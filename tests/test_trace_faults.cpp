// Observability and failure injection: the trace facility records the
// fabric's event stream; injected faults (dropped / corrupted messages)
// are *detected* — a dropped halo deadlocks the completion protocol
// instead of silently computing garbage, and corrupted payloads are caught
// by the host-side numerical validation. Also: the any-source broadcast
// component (paper future work).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/pe_program.hpp"
#include "core/solver.hpp"
#include "core/validation.hpp"
#include "csl/any_source.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"
#include "wse/fabric.hpp"
#include "wse/trace.hpp"

namespace fvdf {
namespace {

using core::DataflowConfig;

// Loads the CG solver program into a caller-owned fabric so tests can
// instrument it (trace sinks, fault plans) before running.
void load_solver(wse::Fabric& fabric, const FlowProblem& problem,
                 u64 max_iterations) {
  const auto& mesh = problem.mesh();
  const auto sys = problem.discretize<f32>();
  fabric.load([&](wse::PeCoord coord) -> std::unique_ptr<wse::PeProgram> {
    core::CgPeConfig config;
    config.nz = static_cast<u32>(mesh.nz());
    config.max_iterations = max_iterations;
    config.tolerance = 0.0f;
    config.init = core::build_pe_init(problem, sys, coord.x, coord.y,
                                      core::FluxMode::Fused);
    return std::make_unique<core::CgPeProgram>(std::move(config));
  });
}

// ---------- tracing ----------

TEST(Trace, RecordsEveryEventCategoryOfASolve) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  wse::Fabric fabric(3, 3);
  load_solver(fabric, problem, 3);
  wse::TraceBuffer buffer;
  fabric.set_trace(buffer.sink());
  ASSERT_TRUE(fabric.run().all_halted);

  EXPECT_GT(buffer.count(wse::TraceEvent::MessageInjected), 0u);
  EXPECT_GT(buffer.count(wse::TraceEvent::LinkHop), 0u);
  EXPECT_GT(buffer.count(wse::TraceEvent::RampDelivery), 0u);
  EXPECT_GT(buffer.count(wse::TraceEvent::TaskRun), 0u);
  EXPECT_GT(buffer.count(wse::TraceEvent::SwitchAdvance), 0u);
  EXPECT_EQ(buffer.count(wse::TraceEvent::FaultDrop), 0u);
  EXPECT_GE(buffer.total(), buffer.records().size());
}

TEST(Trace, TimesAreMonotonePerPe) {
  const auto problem = FlowProblem::homogeneous_column(2, 2, 3);
  wse::Fabric fabric(2, 2);
  load_solver(fabric, problem, 2);
  wse::TraceBuffer buffer;
  fabric.set_trace(buffer.sink());
  ASSERT_TRUE(fabric.run().all_halted);
  // TaskRun events on one PE never go back in time.
  std::map<std::pair<i64, i64>, f64> last;
  for (const auto& record : buffer.records()) {
    if (record.event != wse::TraceEvent::TaskRun) continue;
    auto& prev = last[{record.at.x, record.at.y}];
    EXPECT_GE(record.cycles, prev);
    prev = record.cycles;
  }
}

TEST(Trace, BufferRespectsCapacity) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  wse::Fabric fabric(3, 3);
  load_solver(fabric, problem, 4);
  wse::TraceBuffer buffer(/*capacity=*/100);
  fabric.set_trace(buffer.sink());
  ASSERT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(buffer.records().size(), 100u);
  EXPECT_GT(buffer.total(), 100u); // counted even when not stored
}

TEST(Trace, SummaryListsCategories) {
  wse::TraceBuffer buffer;
  buffer.sink()({wse::TraceEvent::LinkHop, 1.0, {0, 0}, 3, 8});
  const std::string summary = buffer.summary();
  EXPECT_NE(summary.find("hop=1"), std::string::npos);
}

// ---------- fault injection ----------

TEST(Faults, DroppedHaloMessageDeadlocksInsteadOfCorrupting) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  wse::Fabric fabric(3, 3);
  load_solver(fabric, problem, 5);
  wse::FaultPlan plan;
  plan.drop_message_index = 7; // some message of the first halo exchange
  fabric.set_faults(plan);
  wse::TraceBuffer buffer;
  fabric.set_trace(buffer.sink());

  const auto result = fabric.run(/*max_cycles=*/2e6);
  // The completion-callback protocol starves: no silent wrong answer.
  EXPECT_FALSE(result.all_halted);
  EXPECT_EQ(buffer.count(wse::TraceEvent::FaultDrop), 1u);
}

TEST(Faults, EveryDropPositionIsDetectedLoudly) {
  // A dropped message anywhere in the protocol must never produce a clean
  // "all halted" run: either the completion protocol starves (deadlock) or
  // downstream state violates an FVDF_CHECK (a thrown error). Sweep the
  // drop position across the early protocol to cover halo data, reduce
  // partials and broadcasts.
  for (u64 drop = 1; drop <= 12; ++drop) {
    const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
    wse::Fabric fabric(3, 3);
    load_solver(fabric, problem, 5);
    wse::FaultPlan plan;
    plan.drop_message_index = drop;
    fabric.set_faults(plan);
    bool detected = false;
    try {
      const auto result = fabric.run(1e6);
      detected = !result.all_halted;
    } catch (const Error&) {
      detected = true; // protocol-violation check fired: also loud
    }
    EXPECT_TRUE(detected) << "drop at message " << drop << " went unnoticed";
  }
}

TEST(Faults, CorruptedPayloadIsCaughtByValidation) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, 77);
  // Clean reference result.
  DataflowConfig clean_config;
  clean_config.tolerance = 1e-13f;
  const auto clean = core::solve_dataflow(problem, clean_config);
  ASSERT_TRUE(clean.converged);
  const auto clean_report = core::compare_with_host(problem, clean, 1e-22);
  ASSERT_LT(clean_report.rel_l2_error, 1e-4);

  // Corrupt one halo word mid-solve (sign-bit flip makes it blatant) and
  // run a fixed number of iterations (a corrupted Krylov basis may stall
  // convergence entirely, which is itself a detection).
  wse::Fabric fabric(4, 4);
  load_solver(fabric, problem, clean.iterations);
  wse::FaultPlan plan;
  plan.corrupt_message_index = 40;
  // Bit 30 is the exponent MSB: even a 0.0 payload word becomes 2.0, so
  // the corruption is visible regardless of the word's value (a sign flip
  // of 0.0 would be a silent no-op).
  plan.corrupt_bit = 30;
  fabric.set_faults(plan);
  wse::TraceBuffer buffer;
  fabric.set_trace(buffer.sink());
  const auto run = fabric.run(1e9);
  ASSERT_TRUE(run.all_halted);
  EXPECT_EQ(buffer.count(wse::TraceEvent::FaultCorrupt), 1u);

  // Read back the corrupted solution through the standard layout.
  const auto sys = problem.discretize<f32>();
  const auto& mesh = problem.mesh();
  std::vector<f32> pressure(static_cast<std::size_t>(mesh.cell_count()));
  const std::vector<f64> p0 = problem.initial_pressure();
  for (i64 y = 0; y < mesh.ny(); ++y)
    for (i64 x = 0; x < mesh.nx(); ++x) {
      u32 dcount = 0;
      for (i64 z = 0; z < mesh.nz(); ++z)
        if (sys.dirichlet[static_cast<std::size_t>((z * mesh.ny() + y) * mesh.nx() + x)])
          ++dcount;
      wse::PeMemory probe;
      const auto layout = core::PeLayout::plan(probe, static_cast<u32>(mesh.nz()),
                                               core::FluxMode::Fused, dcount);
      for (i64 z = 0; z < mesh.nz(); ++z) {
        const auto k = static_cast<std::size_t>((z * mesh.ny() + y) * mesh.nx() + x);
        pressure[k] = static_cast<f32>(p0[k]) +
                      fabric.pe_memory(x, y).load(layout.ysol.offset_words +
                                                  static_cast<u32>(z));
      }
    }

  // The corrupted run must differ measurably from the f64 oracle.
  CgOptions host_options;
  host_options.tolerance = 1e-22;
  const auto host = solve_pressure_host(problem, host_options);
  f64 worst = 0;
  for (std::size_t i = 0; i < pressure.size(); ++i)
    worst = std::max(worst,
                     std::fabs(static_cast<f64>(pressure[i]) - host.pressure[i]));
  EXPECT_GT(worst, 1e-3) << "corruption went undetected";
}

// ---------- any-source broadcast ----------

class BroadcastProgram final : public wse::PeProgram {
public:
  BroadcastProgram(wse::PeCoord source, u32 words) : source_(source), words_(words) {}

  void on_start(wse::PeContext& ctx) override {
    bcast_.configure(ctx, source_);
    block_ = ctx.memory().alloc_f32("block", words_);
    const bool am_source = ctx.coord() == source_;
    for (u32 i = 0; i < words_; ++i)
      ctx.memory().store(block_.offset_words + i,
                         am_source ? static_cast<f32>(1000 + i) : -1.0f);
    bcast_.start(ctx, wse::dsd(block_), [this](wse::PeContext& c) {
      for (u32 i = 0; i < words_; ++i)
        EXPECT_FLOAT_EQ(c.memory().load(block_.offset_words + i),
                        static_cast<f32>(1000 + i))
            << "PE(" << c.coord().x << "," << c.coord().y << ") word " << i;
      c.halt();
    });
  }

  void on_task(wse::PeContext& ctx, wse::Color color) override {
    ASSERT_TRUE(bcast_.handles(color));
    bcast_.on_task(ctx, color);
  }

private:
  wse::PeCoord source_;
  u32 words_;
  csl::AnySourceBroadcast bcast_;
  wse::MemSpan block_{};
};

struct BroadcastParam {
  i64 width, height, sx, sy;
};

class AnySourceShapes : public ::testing::TestWithParam<BroadcastParam> {};

TEST_P(AnySourceShapes, EveryPeReceivesTheBlock) {
  const auto [width, height, sx, sy] = GetParam();
  wse::Fabric fabric(width, height);
  fabric.load([&, sx = sx, sy = sy](wse::PeCoord) {
    return std::make_unique<BroadcastProgram>(wse::PeCoord{sx, sy}, 6);
  });
  EXPECT_TRUE(fabric.run().all_halted)
      << width << "x" << height << " from (" << sx << "," << sy << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sources, AnySourceShapes,
    ::testing::Values(BroadcastParam{1, 1, 0, 0}, BroadcastParam{4, 4, 0, 0},
                      BroadcastParam{4, 4, 3, 3}, BroadcastParam{5, 3, 2, 1},
                      BroadcastParam{3, 5, 1, 4}, BroadcastParam{1, 6, 0, 2},
                      BroadcastParam{6, 1, 5, 0}, BroadcastParam{7, 7, 3, 3}));

TEST(AnySourceBroadcast, HopCountMatchesManhattanOptimum) {
  // Total link hops of the flood = sum over PEs of nothing extra: each of
  // the W*H - 1 non-source PEs is reached over a shortest path, and each
  // link of the broadcast tree is traversed once per message.
  const i64 width = 5, height = 4;
  wse::Fabric fabric(width, height);
  fabric.load([&](wse::PeCoord) {
    return std::make_unique<BroadcastProgram>(wse::PeCoord{2, 1}, 3);
  });
  ASSERT_TRUE(fabric.run().all_halted);
  // Tree edges: (width-1) row edges + width * (height-1) column edges.
  const u64 expected_hops = static_cast<u64>(width - 1) + width * (height - 1);
  EXPECT_EQ(fabric.stats().wavelet_hops, expected_hops);
}

} // namespace
} // namespace fvdf
