// Cross-implementation integration tests: the same discrete problem solved
// by (a) the f64 host oracle, (b) the fp32 host solver, (c) the simulated
// GPU reference, and (d) the simulated dataflow device must agree — the
// "numerical integrity" requirement of Sec. V-B — plus end-to-end checks
// of the physics (Fig. 5's pressure propagation) and the instrumentation
// used by the benches.

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "gpu/gpu_solver.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf {
namespace {

TEST(Integration, AllFourImplementationsAgree) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 5, /*seed=*/2024, 0.8);

  CgOptions host_options;
  host_options.tolerance = 1e-24;
  const auto host64 = solve_pressure_host(problem, host_options);
  ASSERT_TRUE(host64.cg.converged);

  CgOptions host32_options;
  host32_options.tolerance = 1e-12;
  const auto host32 = solve_pressure_host_f32(problem, host32_options);
  ASSERT_TRUE(host32.cg.converged);

  gpu::GpuFvSolver gpu_solver(problem, GpuSpec::a100(), 2);
  gpu::GpuSolveConfig gpu_config;
  gpu_config.tolerance = 1e-12;
  const auto gpu = gpu_solver.solve(gpu_config);
  ASSERT_TRUE(gpu.converged);

  core::DataflowConfig df_config;
  df_config.tolerance = 1e-12f;
  const auto dataflow = core::solve_dataflow(problem, df_config);
  ASSERT_TRUE(dataflow.converged);

  for (std::size_t i = 0; i < host64.pressure.size(); ++i) {
    EXPECT_NEAR(static_cast<f64>(host32.pressure[i]), host64.pressure[i], 1e-4);
    EXPECT_NEAR(static_cast<f64>(gpu.pressure[i]), host64.pressure[i], 1e-4);
    EXPECT_NEAR(static_cast<f64>(dataflow.pressure[i]), host64.pressure[i], 1e-4);
  }
}

TEST(Integration, PressurePropagatesFromInjectorToProducer) {
  // Fig. 5's physics: monotone decay along the diagonal from the source
  // (top-left) to the producer (bottom-right).
  const auto problem = FlowProblem::homogeneous_column(9, 9, 2);
  CgOptions options;
  options.tolerance = 1e-24;
  const auto result = solve_pressure_host(problem, options);
  ASSERT_TRUE(result.cg.converged);

  const auto& mesh = problem.mesh();
  auto p = [&](i64 x, i64 y) {
    return result.pressure[static_cast<std::size_t>(mesh.index(x, y, 0))];
  };
  // Pressure decreases along the main diagonal.
  for (i64 d = 0; d < 8; ++d) EXPECT_GT(p(d, d), p(d + 1, d + 1));
  // Near the injector it is close to injection pressure; near the producer
  // close to production pressure.
  EXPECT_GT(p(1, 0), 0.5);
  EXPECT_LT(p(8, 7), 0.5);
}

TEST(Integration, HeterogeneityChangesTheField) {
  CgOptions options;
  options.tolerance = 1e-22;
  const auto homo =
      solve_pressure_host(FlowProblem::homogeneous_column(8, 8, 3), options);
  const auto hetero = solve_pressure_host(
      FlowProblem::quarter_five_spot(8, 8, 3, /*seed=*/6, /*log_sigma=*/1.5), options);
  f64 max_diff = 0;
  for (std::size_t i = 0; i < homo.pressure.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(homo.pressure[i] - hetero.pressure[i]));
  EXPECT_GT(max_diff, 1e-3);
}

TEST(Integration, DataflowIterationsMatchGpuIterations) {
  // Both are fp32 CG on the identical discrete system; reduction orders
  // differ, so allow a small drift but no systematic gap.
  const auto problem = FlowProblem::quarter_five_spot(5, 6, 4, 31, 0.6);
  core::DataflowConfig df_config;
  df_config.tolerance = 1e-12f;
  const auto dataflow = core::solve_dataflow(problem, df_config);

  gpu::GpuFvSolver gpu_solver(problem, GpuSpec::a100(), 1);
  gpu::GpuSolveConfig gpu_config;
  gpu_config.tolerance = 1e-12;
  const auto gpu = gpu_solver.solve(gpu_config);

  ASSERT_TRUE(dataflow.converged);
  ASSERT_TRUE(gpu.converged);
  EXPECT_NEAR(static_cast<f64>(dataflow.iterations), static_cast<f64>(gpu.iterations),
              std::max(3.0, 0.25 * static_cast<f64>(gpu.iterations)));
}

TEST(Integration, ValidationHarnessReportsSmallErrors) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 4, 404);
  core::DataflowConfig config;
  config.tolerance = 1e-13f;
  const auto report = core::validate_against_host(problem, config, 1e-24);
  EXPECT_TRUE(report.device_converged);
  EXPECT_LT(report.rel_l2_error, 1e-4) << report.summary();
  EXPECT_GT(report.device_iterations, 0u);
  EXPECT_NE(report.summary().find("device vs host"), std::string::npos);
}

TEST(Integration, CommunicationFractionIsSmallButNonzero) {
  // Table IV's shape: on the simulated device, communication accounts for
  // a minor share of the total time (6.27% in the paper at Nz=922; our
  // reduced-scale columns see a higher share but still a minority).
  const auto problem = FlowProblem::homogeneous_column(6, 6, 32);
  core::DataflowConfig full;
  full.jx_only = true;
  full.max_iterations = 8;
  const auto with_compute = core::solve_dataflow(problem, full);

  core::DataflowConfig comm_only = full;
  comm_only.timing.compute_scale = 0.0;
  const auto comm = core::solve_dataflow(problem, comm_only);

  const f64 fraction = comm.device_cycles / with_compute.device_cycles;
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.9);
}

TEST(Integration, DeeperColumnsAmortizeCommunication) {
  // The paper's design point: all Z cells share a PE, so deeper columns
  // raise arithmetic intensity per message.
  auto comm_fraction = [](i64 nz) {
    const auto problem = FlowProblem::homogeneous_column(4, 4, nz);
    core::DataflowConfig full;
    full.jx_only = true;
    full.max_iterations = 5;
    const auto total = core::solve_dataflow(problem, full);
    core::DataflowConfig comm_cfg = full;
    comm_cfg.timing.compute_scale = 0.0;
    const auto comm = core::solve_dataflow(problem, comm_cfg);
    return comm.device_cycles / total.device_cycles;
  };
  EXPECT_LT(comm_fraction(64), comm_fraction(4) + 0.35);
}

TEST(Integration, FabricWordCountsMatchHaloAnalyticFormula) {
  // Per Jx pass every PE sends its column to 4 neighbors; delivered words
  // = sum over PEs of (existing neighbors) * nz. For a 4x4 fabric:
  // interior degree sum = 2*(2*w*h - w - h) directed edges.
  const i64 w = 4, h = 4, nz = 8;
  const auto problem = FlowProblem::homogeneous_column(w, h, nz);
  core::DataflowConfig config;
  config.jx_only = true;
  config.max_iterations = 1;
  const auto result = core::solve_dataflow(problem, config);
  const u64 directed_edges = 2 * (2 * w * h - w - h);
  EXPECT_EQ(result.fabric.words_delivered, directed_edges * static_cast<u64>(nz));
}

TEST(Integration, OpCountersScaleLinearlyWithIterations) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 8);
  auto flops_for = [&](u64 iters) {
    core::DataflowConfig config;
    config.jx_only = true;
    config.max_iterations = iters;
    return core::solve_dataflow(problem, config).counters.total_flops();
  };
  const u64 f2 = flops_for(2);
  const u64 f4 = flops_for(4);
  // Linear growth (same per-iteration work, no setup FLOPs in jx-only).
  EXPECT_NEAR(static_cast<f64>(f4) / static_cast<f64>(f2), 2.0, 0.1);
}

} // namespace
} // namespace fvdf
