// GPU reference-implementation tests: CUDA-model grid/block mapping
// (including non-multiple-of-block dims with guard threads), kernel
// correctness against the host operator, reduction correctness, CG solve
// agreement, and the analytic timing model's shape.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "gpu/cuda_model.hpp"
#include "gpu/gpu_solver.hpp"
#include "gpu/kernels.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf::gpu {
namespace {

// ---------- grid/block mapping ----------

TEST(CudaModel, GridCoversBoxExactly) {
  const Dim3 grid = grid_for(33, 9, 17); // none are multiples of 16/8/8
  EXPECT_EQ(grid.x, 3u);
  EXPECT_EQ(grid.y, 2u);
  EXPECT_EQ(grid.z, 3u);
}

TEST(CudaModel, PaperBlockShapeIs1024Threads) {
  EXPECT_EQ(kPaperBlockDim.count(), 1024u);
  EXPECT_EQ(kPaperBlockDim.x, 16u); // innermost = 16 (Sec. IV)
}

TEST(CudaModel, LaunchVisitsEveryThreadExactlyOnce) {
  CudaDevice device(GpuSpec::a100(), 2);
  std::vector<std::atomic<int>> hits(4 * 3 * 2);
  device.launch(Dim3{2, 1, 1}, Dim3{2, 3, 2}, 0, [&](const ThreadCtx& t) {
    const u64 flat = t.gz() * 12 + t.gy() * 4 + t.gx();
    hits[flat].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(CudaModel, RejectsOversizedBlocks) {
  CudaDevice device(GpuSpec::a100(), 1);
  EXPECT_THROW(device.launch(Dim3{1, 1, 1}, Dim3{32, 32, 2}, 0, [](const ThreadCtx&) {}),
               Error);
}

TEST(CudaModel, AccountingAccumulatesAndResets) {
  CudaDevice device(GpuSpec::a100(), 1);
  device.launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, 100, [](const ThreadCtx&) {});
  device.launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, 50, [](const ThreadCtx&) {});
  device.memcpy_traffic(7);
  EXPECT_EQ(device.kernel_launches(), 2u);
  EXPECT_EQ(device.hbm_traffic_bytes(), 150u);
  EXPECT_EQ(device.memcpy_bytes(), 7u);
  device.reset_accounting();
  EXPECT_EQ(device.kernel_launches(), 0u);
}

// ---------- kernels vs host operator ----------

TEST(GpuKernels, JxMatchesHostOperator) {
  // 17x5x3 is deliberately not divisible by the 16x8x8 block shape, so the
  // guard-thread path is exercised alongside exact-fit shapes.
  for (const auto [nx, ny, nz] : {std::array<i64, 3>{17, 5, 3},
                                  std::array<i64, 3>{16, 8, 8},
                                  std::array<i64, 3>{3, 3, 9}}) {
    const auto problem = FlowProblem::quarter_five_spot(nx, ny, nz, 42);
    const auto sys = problem.discretize<f32>();
    CudaDevice device(GpuSpec::a100(), 2);
    const DeviceSystem dev_sys = DeviceSystem::upload(device, sys);

    const auto n = static_cast<std::size_t>(sys.cell_count());
    Rng rng(7);
    std::vector<f32> x(n), q_gpu(n), q_host(n);
    for (auto& v : x) v = static_cast<f32>(rng.uniform(-1, 1));

    launch_jx(device, dev_sys, x.data(), q_gpu.data());
    const MatrixFreeOperator<f32> host_op(sys);
    host_op.apply(x.data(), q_host.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_FLOAT_EQ(q_gpu[i], q_host[i]) << nx << "x" << ny << "x" << nz;
  }
}

TEST(GpuKernels, InitialResidualZeroesDirichletRows) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 3);
  const auto sys = problem.discretize<f32>();
  CudaDevice device(GpuSpec::a100(), 1);
  const DeviceSystem dev_sys = DeviceSystem::upload(device, sys);
  const auto p0_host = problem.initial_pressure();
  std::vector<f32> p0(p0_host.begin(), p0_host.end());
  std::vector<f32> r(p0.size());
  launch_initial_residual(device, dev_sys, p0.data(), r.data());
  for (const auto& [idx, value] : problem.bc().sorted())
    EXPECT_EQ(r[static_cast<std::size_t>(idx)], 0.0f);
  // Interior rows next to the injector must feel the pressure difference.
  f32 max_abs = 0;
  for (f32 v : r) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_GT(max_abs, 0.0f);
}

TEST(GpuKernels, VectorKernels) {
  CudaDevice device(GpuSpec::a100(), 1);
  const u64 n = 1000;
  std::vector<f32> x(n, 2.0f), y(n, 1.0f);
  launch_axpy(device, 3.0f, x.data(), y.data(), n);
  for (f32 v : y) EXPECT_FLOAT_EQ(v, 7.0f);
  launch_xpby(device, x.data(), 0.5f, y.data(), n);
  for (f32 v : y) EXPECT_FLOAT_EQ(v, 5.5f);
}

TEST(GpuKernels, DotMatchesSerialForAwkwardLengths) {
  CudaDevice device(GpuSpec::a100(), 2);
  Rng rng(9);
  for (u64 n : {1ull, 255ull, 256ull, 257ull, 10000ull}) {
    std::vector<f32> a(n), b(n);
    f64 expected = 0;
    for (u64 i = 0; i < n; ++i) {
      a[i] = static_cast<f32>(rng.uniform(-1, 1));
      b[i] = static_cast<f32>(rng.uniform(-1, 1));
      expected += static_cast<f64>(a[i]) * static_cast<f64>(b[i]);
    }
    const f64 got = launch_dot(device, a.data(), b.data(), n);
    EXPECT_NEAR(got, expected, 1e-3 + 1e-5 * static_cast<f64>(n)) << "n=" << n;
  }
}

TEST(GpuKernels, CsrSpmvMatchesMatrixFreeKernel) {
  const auto problem = FlowProblem::quarter_five_spot(7, 6, 4, 3);
  const auto sys = problem.discretize<f32>();
  CudaDevice device(GpuSpec::a100(), 1);
  const DeviceSystem dev_sys = DeviceSystem::upload(device, sys);
  const DeviceCsr csr = assemble_csr(device, sys);
  EXPECT_GT(csr.bytes(), sys.data_bytes()); // the storage matrix-free avoids

  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(4);
  std::vector<f32> x(n), q_mf(n), q_csr(n);
  for (auto& v : x) v = static_cast<f32>(rng.uniform(-1, 1));
  launch_jx(device, dev_sys, x.data(), q_mf.data());
  launch_spmv(device, csr, x.data(), q_csr.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(q_mf[i], q_csr[i], 1e-4f);
}

TEST(GpuKernels, SpmvTrafficExceedsMatrixFreeTraffic) {
  const auto problem = FlowProblem::quarter_five_spot(8, 8, 8, 1);
  const auto sys = problem.discretize<f32>();
  CudaDevice device(GpuSpec::a100(), 1);
  const DeviceSystem dev_sys = DeviceSystem::upload(device, sys);
  const DeviceCsr csr = assemble_csr(device, sys);
  EXPECT_GT(nominal_spmv_traffic(csr), nominal_jx_traffic(dev_sys));
}

// ---------- end-to-end GPU solve ----------

TEST(GpuSolver, MatchesHostPressureSolve) {
  const auto problem = FlowProblem::quarter_five_spot(8, 7, 4, 1001);
  GpuFvSolver solver(problem, GpuSpec::a100(), 2);
  GpuSolveConfig config;
  config.tolerance = 1e-12;
  const auto result = solver.solve(config);
  ASSERT_TRUE(result.converged);

  CgOptions host_options;
  host_options.tolerance = 1e-22;
  const auto host = solve_pressure_host(problem, host_options);
  for (std::size_t i = 0; i < host.pressure.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(result.pressure[i]), host.pressure[i], 5e-5);
}

TEST(GpuSolver, CountsLaunchesAndTraffic) {
  const auto problem = FlowProblem::homogeneous_column(6, 6, 4);
  GpuFvSolver solver(problem, GpuSpec::a100(), 1);
  GpuSolveConfig config;
  config.tolerance = 1e-12;
  const auto result = solver.solve(config);
  ASSERT_TRUE(result.converged);
  // Per iteration: jx + 2x2 dot launches + 2 axpy + xpby = 8-ish, plus setup.
  EXPECT_GT(result.kernel_launches, 6 * result.iterations);
  EXPECT_GT(result.nominal_hbm_bytes, 0u);
  EXPECT_GT(result.modeled_seconds, 0.0);
}

TEST(GpuSolver, MatrixBasedSolveMatchesMatrixFree) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 4, 17);
  GpuFvSolver solver(problem, GpuSpec::a100(), 1);
  GpuSolveConfig config;
  config.tolerance = 1e-12;
  const auto mf = solver.solve(config);
  const auto csr = solver.solve_matrix_based(config);
  ASSERT_TRUE(mf.converged);
  ASSERT_TRUE(csr.converged);
  EXPECT_EQ(mf.iterations, csr.iterations); // identical arithmetic path
  for (std::size_t i = 0; i < mf.pressure.size(); ++i)
    EXPECT_NEAR(mf.pressure[i], csr.pressure[i], 1e-4f);
  // The matrix-based path moves more HBM bytes and models slower.
  EXPECT_GT(csr.nominal_hbm_bytes, mf.nominal_hbm_bytes);
  EXPECT_GT(csr.modeled_seconds, mf.modeled_seconds);
}

TEST(GpuSolver, JxOnlyModeCountsExactLaunches) {
  const auto problem = FlowProblem::homogeneous_column(5, 5, 3);
  GpuFvSolver solver(problem, GpuSpec::a100(), 1);
  const auto result = solver.run_jx_only(7);
  EXPECT_EQ(result.kernel_launches, 7u);
  EXPECT_EQ(result.iterations, 7u);
}

// ---------- analytic timing model shape ----------

TEST(GpuModel, TimeScalesWithCellsAndIterations) {
  const GpuAnalyticModel model(GpuSpec::a100());
  EXPECT_GT(model.alg2_time(2'000'000, 10), model.alg2_time(1'000'000, 10));
  EXPECT_GT(model.alg2_time(1'000'000, 20), model.alg2_time(1'000'000, 10));
  EXPECT_GT(model.alg1_time(1'000'000, 10), model.alg2_time(1'000'000, 10));
}

TEST(GpuModel, OccupancyRampPenalizesSmallGrids) {
  const GpuAnalyticModel model(GpuSpec::a100());
  // Per-cell time decreases with size (Table III's small-grid inefficiency).
  const f64 small = model.alg2_time(36'880'000, 1) / 36'880'000;
  const f64 large = model.alg2_time(687'351'000, 1) / 687'351'000;
  EXPECT_GT(small, 1.5 * large);
  EXPECT_LT(model.occupancy(1'000'000), model.occupancy(100'000'000));
  EXPECT_LT(model.occupancy(1u << 30), 1.0);
}

TEST(GpuModel, H100IsFasterThanA100ByRoughlyBandwidthRatio) {
  const GpuAnalyticModel a100(GpuSpec::a100());
  const GpuAnalyticModel h100(GpuSpec::h100());
  const u64 cells = 687'351'000;
  const f64 ratio = a100.alg1_time(cells, 225) / h100.alg1_time(cells, 225);
  EXPECT_GT(ratio, 1.7); // paper Table II: 23.19 / 11.39 = 2.04
  EXPECT_LT(ratio, 2.4);
}

} // namespace
} // namespace fvdf::gpu
