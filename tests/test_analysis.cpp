// Static fabric-program verifier tests (src/analysis/): every shipped CSL
// collective verifies clean across fabric shapes (including degenerate
// ones), each seeded defect is rejected with exactly the diagnostic its
// check advertises, and the solver-facing entry points (verify_dataflow,
// Fabric::verify, the solve_dataflow pre-flight) agree with the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/fixtures.hpp"
#include "analysis/verifier.hpp"
#include "common/error.hpp"
#include "core/bytecode_program.hpp"
#include "core/chebyshev_program.hpp"
#include "core/pe_program.hpp"
#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/chebyshev.hpp"
#include "wse/bytecode.hpp"
#include "wse/fabric.hpp"
#include "wse/router.hpp"

namespace fvdf {
namespace {

using analysis::Check;
using analysis::Diagnostic;
using analysis::Severity;
using analysis::VerifyReport;
using analysis::verify_program;
namespace fixtures = analysis::fixtures;

bool has_error(const VerifyReport& report, Check check,
               const std::string& needle) {
  for (const Diagnostic& diag : report.diagnostics)
    if (diag.check == check && diag.severity == Severity::Error &&
        diag.message.find(needle) != std::string::npos)
      return true;
  return false;
}

// ---------- known-good collectives across fabric shapes ----------

struct Shape {
  i64 width, height;
};
// Degenerate rows/columns and single PEs are exactly where edge clipping
// and the width/height guards in the manifests can go wrong.
constexpr Shape kShapes[] = {{1, 1}, {2, 1}, {1, 2}, {4, 1},
                             {1, 4}, {2, 2}, {3, 5}, {8, 8}};

TEST(VerifyCollectives, HaloExchangeCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::halo_program(6));
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, AllReduceCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::allreduce_program());
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, EastwardExchangeCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::eastward_program());
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, AnySourceCleanOnAllShapesAndRoots) {
  for (const auto [w, h] : kShapes) {
    for (const wse::PeCoord root :
         {wse::PeCoord{0, 0}, wse::PeCoord{w - 1, h - 1},
          wse::PeCoord{w / 2, h / 2}}) {
      const auto report =
          verify_program(w, h, fixtures::any_source_program(root));
      EXPECT_TRUE(report.ok()) << w << "x" << h << " root (" << root.x << ", "
                               << root.y << "):\n" << report.summary();
    }
  }
}

TEST(VerifyCollectives, ReportCountsCoverTheFabric) {
  const auto report = verify_program(4, 4, fixtures::halo_program(4));
  EXPECT_EQ(report.width, 4);
  EXPECT_EQ(report.height, 4);
  // Four halo colors injected everywhere; the trace walks real state.
  EXPECT_EQ(report.colors_traced, 4u);
  EXPECT_GT(report.routes_checked, 0u);
  EXPECT_GT(report.cdg_nodes, 0u);
  // Edge-clipped sends become deliberate null-route sinks, not errors.
  EXPECT_GT(report.null_route_sinks, 0u);
  EXPECT_GT(report.memory_high_water_bytes, 0u);
  EXPECT_LE(report.memory_high_water_bytes,
            report.memory_capacity_bytes - report.memory_reserved_bytes);
}

// ---------- seeded defects: one specific diagnostic each ----------

TEST(VerifyDefects, EdgeRouteExitsFabric) {
  const auto report = verify_program(3, 1, fixtures::edge_route_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::RouteCompleteness,
                        "exits the East fabric edge at PE (2, 0)"))
      << report.summary();
}

TEST(VerifyDefects, CreditCycleReportsCycleWalk) {
  const auto report = verify_program(2, 1, fixtures::credit_cycle_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::DeadlockFreedom,
                        "channel-dependency cycle on color 5"))
      << report.summary();
  // The walk names both PEs and the exit directions of the cycle.
  EXPECT_TRUE(has_error(report, Check::DeadlockFreedom,
                        "PE (1, 0) --West--> PE (0, 0) --East--> PE (1, 0)"))
      << report.summary();
}

TEST(VerifyDefects, MissingHandlerAtDeliveryPe) {
  const auto report = verify_program(2, 1, fixtures::missing_handler_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::DeliveryLiveness,
                        "no recv or task handler"))
      << report.summary();
}

TEST(VerifyDefects, ArenaOverflowIsMemoryBudget) {
  const auto report = verify_program(1, 1, fixtures::arena_overflow_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::MemoryBudget, "PE memory overflow"))
      << report.summary();
  // The overflow is reported per PE, not silently re-thrown.
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(VerifyDefects, DefectsScaleWithFabric) {
  // On a wider fabric the missing-handler defect fires on every odd column.
  const auto report = verify_program(4, 2, fixtures::missing_handler_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 4u) << report.summary();
}

// ---------- custom programs: switch liveness + diagnostics plumbing ----------

/// Two switch positions but nobody ever advances the color.
class StuckSwitchProgram final : public wse::PeProgram {
public:
  void on_start(wse::PeContext& ctx) override {
    wse::ColorConfig config;
    config.positions = {
        wse::SwitchPosition{wse::DirMask::of(wse::Dir::Ramp), {}},
        wse::SwitchPosition{wse::DirMask::of(wse::Dir::Ramp), {}}};
    ctx.configure_router(7, config);
  }
  void on_task(wse::PeContext&, wse::Color) override {}
  wse::ProgramManifest manifest(wse::PeCoord coord, i64, i64) const override {
    wse::ProgramManifest m;
    if (coord.x == 0) m.injects |= wse::color_set_bit(7);
    return m;
  }
};

TEST(VerifySwitchLiveness, UnadvancedMultiPositionColorIsAnError) {
  const auto report = verify_program(
      1, 1, [](wse::PeCoord) { return std::make_unique<StuckSwitchProgram>(); });
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::SwitchLiveness, "advance"))
      << report.summary();
}

TEST(VerifyDiagnostics, FormatNamesCheckColorAndPe) {
  const auto report = verify_program(2, 1, fixtures::credit_cycle_defect());
  ASSERT_FALSE(report.diagnostics.empty());
  const std::string line = report.diagnostics.front().format();
  EXPECT_NE(line.find("error[deadlock-freedom]"), std::string::npos) << line;
  EXPECT_NE(line.find("color 5"), std::string::npos) << line;
  EXPECT_NE(line.find("at PE ("), std::string::npos) << line;
}

TEST(VerifyDiagnostics, SummaryLeadsWithVerdict) {
  const auto good = verify_program(2, 2, fixtures::allreduce_program());
  EXPECT_EQ(good.summary().find("fabric verify 2x2: OK"), 0u);
  const auto bad = verify_program(1, 1, fixtures::arena_overflow_defect());
  EXPECT_EQ(bad.summary().find("fabric verify 1x1: FAIL"), 0u);
}

TEST(VerifyApi, RejectsNonPositiveFabric) {
  EXPECT_THROW(verify_program(0, 4, fixtures::allreduce_program()), Error);
  EXPECT_THROW(verify_program(4, -1, fixtures::allreduce_program()), Error);
}

// ---------- solver-facing entry points ----------

TEST(VerifyFabricMember, MatchesFreeFunction) {
  const wse::Fabric fabric(3, 2);
  const auto via_member = fabric.verify(fixtures::halo_program(4));
  const auto via_free = verify_program(3, 2, fixtures::halo_program(4));
  EXPECT_TRUE(via_member.ok()) << via_member.summary();
  EXPECT_EQ(via_member.routes_checked, via_free.routes_checked);
  EXPECT_EQ(via_member.cdg_edges, via_free.cdg_edges);
  EXPECT_EQ(via_member.memory_high_water_bytes,
            via_free.memory_high_water_bytes);
}

TEST(VerifyDataflow, CgDeviceProgramIsClean) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 4, /*seed=*/3, 0.8);
  for (const bool jacobi : {false, true}) {
    core::DataflowConfig config;
    config.jacobi_precondition = jacobi;
    const auto report = core::verify_dataflow(problem, config);
    EXPECT_TRUE(report.ok()) << "jacobi=" << jacobi << ":\n" << report.summary();
    EXPECT_GT(report.colors_traced, 0u);
  }
}

TEST(VerifyDataflow, ChebyshevDeviceProgramIsClean) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 4, /*seed=*/9, 0.8);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  core::ChebyshevDeviceConfig config;
  config.bounds = estimate_spectral_bounds<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); },
      static_cast<std::size_t>(sys.cell_count()));
  const auto report = core::verify_dataflow_chebyshev(problem, config);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(VerifyDataflow, PreflightDoesNotChangeTheSolve) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, /*seed=*/5, 0.8);
  core::DataflowConfig plain;
  plain.tolerance = 1e-10f;
  core::DataflowConfig checked = plain;
  checked.verify_preflight = true;
  const auto a = core::solve_dataflow(problem, plain);
  const auto b = core::solve_dataflow(problem, checked);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_rr, b.final_rr);
  EXPECT_EQ(a.delta, b.delta);
}

// ---------- bytecode static layer: lint, manifests, disassembly ----------

namespace bc = wse::bc;

core::CgPeConfig cg_config(u32 nz) {
  core::CgPeConfig config;
  config.nz = nz;
  config.tolerance = 1e-6f;
  config.init.p0.resize(nz, 0.0f);
  return config;
}

core::ChebyshevPeConfig chebyshev_config(u32 nz) {
  core::ChebyshevPeConfig config;
  config.nz = nz;
  config.tolerance = 1e-6f;
  config.lambda_min = 0.05f;
  config.lambda_max = 12.0f;
  config.init.p0.resize(nz, 0.0f);
  return config;
}

core::LoweringSite site_at(wse::PeCoord coord, i64 w, i64 h, u32 nz) {
  return core::plan_site(coord, w, h, wse::PeMemoryParams{}, nz,
                         core::FluxMode::Fused, /*dirichlet_count=*/0,
                         /*jacobi=*/false, /*with_source=*/false);
}

// The wavelet-bearing facts (injections, switch advances, message widths)
// must agree exactly — they drive route checks and the lookahead planner.
// Handler/activation sets only need containment: the hand-written legacy
// manifests declare every completion color a collective could ever bind,
// whereas the instruction stream knows which ones this site actually does
// (a 1x1 fabric, say, never binds the row-neighbor join colors).
void expect_manifest_matches(const wse::ProgramManifest& derived,
                             const wse::ProgramManifest& legacy,
                             const std::string& where) {
  EXPECT_EQ(derived.injects, legacy.injects) << where;
  EXPECT_EQ(derived.advances, legacy.advances) << where;
  EXPECT_EQ(derived.handles & ~legacy.handles, 0u) << where;
  EXPECT_EQ(derived.activates & ~legacy.activates, 0u) << where;
  for (wse::Color c = 0; c < wse::kNumRoutableColors; ++c) {
    if (wse::color_set_contains(legacy.injects, c)) {
      EXPECT_EQ(derived.min_inject_words[c], legacy.min_inject_words[c])
          << where << " color " << static_cast<int>(c);
    }
  }
}

TEST(BytecodeStatic, LoweredProgramsLintCleanOnAllShapes) {
  constexpr u32 nz = 5;
  const auto cg = cg_config(nz);
  const auto cheb = chebyshev_config(nz);
  for (const auto [w, h] : kShapes) {
    for (const wse::PeCoord coord :
         {wse::PeCoord{0, 0}, wse::PeCoord{w - 1, h - 1},
          wse::PeCoord{w / 2, h / 2}}) {
      const auto site = site_at(coord, w, h, nz);
      const auto issues = bc::lint_program(*core::lower_cg(cg, site));
      EXPECT_TRUE(issues.empty())
          << w << "x" << h << " cg: " << issues.front();
      const auto cheb_issues =
          bc::lint_program(*core::lower_chebyshev(cheb, site));
      EXPECT_TRUE(cheb_issues.empty())
          << w << "x" << h << " chebyshev: " << cheb_issues.front();
    }
  }
}

// The derived manifest is what the verifier and the lookahead planner
// consume; it must agree with the hand-written legacy manifests at every
// PE of every shape, including the declared minimum message widths.
TEST(BytecodeStatic, DerivedCgManifestMatchesLegacy) {
  constexpr u32 nz = 4;
  const auto config = cg_config(nz);
  const core::CgPeProgram legacy(config);
  for (const auto [w, h] : kShapes)
    for (i64 y = 0; y < h; ++y)
      for (i64 x = 0; x < w; ++x) {
        const auto site = site_at({x, y}, w, h, nz);
        const auto derived = bc::derive_manifest(*core::lower_cg(config, site));
        std::ostringstream where;
        where << "PE (" << x << ", " << y << ") on " << w << "x" << h;
        expect_manifest_matches(derived, legacy.manifest({x, y}, w, h),
                                where.str());
      }
}

TEST(BytecodeStatic, DerivedChebyshevManifestMatchesLegacy) {
  constexpr u32 nz = 4;
  const auto config = chebyshev_config(nz);
  const core::ChebyshevPeProgram legacy(config);
  for (const auto [w, h] : kShapes)
    for (i64 y = 0; y < h; ++y)
      for (i64 x = 0; x < w; ++x) {
        const auto site = site_at({x, y}, w, h, nz);
        const auto derived =
            bc::derive_manifest(*core::lower_chebyshev(config, site));
        std::ostringstream where;
        where << "PE (" << x << ", " << y << ") on " << w << "x" << h;
        expect_manifest_matches(derived, legacy.manifest({x, y}, w, h),
                                where.str());
      }
}

TEST(BytecodeStatic, DisassemblyListsEveryInstruction) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto program = core::lower_cg(cg_config(4), site);
  const std::string text = bc::disassemble(*program);
  // Header line plus one line per instruction.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            program->code.size() + 1);
  EXPECT_NE(text.find("program \"cg\""), std::string::npos);
  for (const char* mnemonic : {"SEND", "RECV", "VDOT", "VMAC", "JTOL", "HALT"})
    EXPECT_NE(text.find(mnemonic), std::string::npos) << mnemonic;
}

TEST(BytecodeStatic, LintFlagsCorruptedEncodings) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto clean = core::lower_cg(cg_config(4), site);

  bc::Program empty;
  empty.name = "empty";
  ASSERT_FALSE(bc::lint_program(empty).empty());

  bc::Program bad_entry = *clean;
  bad_entry.entry = static_cast<u16>(bad_entry.code.size());
  EXPECT_FALSE(bc::lint_program(bad_entry).empty());

  bc::Program bad_branch = *clean;
  for (auto& ins : bad_branch.code)
    if (ins.op == bc::Op::JMP) {
      ins.d = 0xfffe;
      break;
    }
  EXPECT_FALSE(bc::lint_program(bad_branch).empty());

  bc::Program bad_dsd = *clean;
  for (auto& ins : bad_dsd.code)
    if (ins.op == bc::Op::VDOT) {
      ins.b = static_cast<u8>(bad_dsd.dsds.size());
      break;
    }
  EXPECT_FALSE(bc::lint_program(bad_dsd).empty());
}

} // namespace
} // namespace fvdf
