// Static fabric-program verifier tests (src/analysis/): every shipped CSL
// collective verifies clean across fabric shapes (including degenerate
// ones), each seeded defect is rejected with exactly the diagnostic its
// check advertises, and the solver-facing entry points (verify_dataflow,
// Fabric::verify, the solve_dataflow pre-flight) agree with the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/abstract_interp.hpp"
#include "analysis/cfg.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/verifier.hpp"
#include "common/error.hpp"
#include "core/bytecode_program.hpp"
#include "core/chebyshev_program.hpp"
#include "core/pe_program.hpp"
#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/chebyshev.hpp"
#include "wse/bytecode.hpp"
#include "wse/fabric.hpp"
#include "wse/router.hpp"

namespace fvdf {
namespace {

using analysis::Check;
using analysis::Diagnostic;
using analysis::Severity;
using analysis::VerifyReport;
using analysis::verify_program;
namespace fixtures = analysis::fixtures;

bool has_error(const VerifyReport& report, Check check,
               const std::string& needle) {
  for (const Diagnostic& diag : report.diagnostics)
    if (diag.check == check && diag.severity == Severity::Error &&
        diag.message.find(needle) != std::string::npos)
      return true;
  return false;
}

// ---------- known-good collectives across fabric shapes ----------

struct Shape {
  i64 width, height;
};
// Degenerate rows/columns and single PEs are exactly where edge clipping
// and the width/height guards in the manifests can go wrong.
constexpr Shape kShapes[] = {{1, 1}, {2, 1}, {1, 2}, {4, 1},
                             {1, 4}, {2, 2}, {3, 5}, {8, 8}};

TEST(VerifyCollectives, HaloExchangeCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::halo_program(6));
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, AllReduceCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::allreduce_program());
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, EastwardExchangeCleanOnAllShapes) {
  for (const auto [w, h] : kShapes) {
    const auto report = verify_program(w, h, fixtures::eastward_program());
    EXPECT_TRUE(report.ok()) << w << "x" << h << ":\n" << report.summary();
  }
}

TEST(VerifyCollectives, AnySourceCleanOnAllShapesAndRoots) {
  for (const auto [w, h] : kShapes) {
    for (const wse::PeCoord root :
         {wse::PeCoord{0, 0}, wse::PeCoord{w - 1, h - 1},
          wse::PeCoord{w / 2, h / 2}}) {
      const auto report =
          verify_program(w, h, fixtures::any_source_program(root));
      EXPECT_TRUE(report.ok()) << w << "x" << h << " root (" << root.x << ", "
                               << root.y << "):\n" << report.summary();
    }
  }
}

TEST(VerifyCollectives, ReportCountsCoverTheFabric) {
  const auto report = verify_program(4, 4, fixtures::halo_program(4));
  EXPECT_EQ(report.width, 4);
  EXPECT_EQ(report.height, 4);
  // Four halo colors injected everywhere; the trace walks real state.
  EXPECT_EQ(report.colors_traced, 4u);
  EXPECT_GT(report.routes_checked, 0u);
  EXPECT_GT(report.cdg_nodes, 0u);
  // Edge-clipped sends become deliberate null-route sinks, not errors.
  EXPECT_GT(report.null_route_sinks, 0u);
  EXPECT_GT(report.memory_high_water_bytes, 0u);
  EXPECT_LE(report.memory_high_water_bytes,
            report.memory_capacity_bytes - report.memory_reserved_bytes);
}

// ---------- seeded defects: one specific diagnostic each ----------

TEST(VerifyDefects, EdgeRouteExitsFabric) {
  const auto report = verify_program(3, 1, fixtures::edge_route_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::RouteCompleteness,
                        "exits the East fabric edge at PE (2, 0)"))
      << report.summary();
}

TEST(VerifyDefects, CreditCycleReportsCycleWalk) {
  const auto report = verify_program(2, 1, fixtures::credit_cycle_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::DeadlockFreedom,
                        "channel-dependency cycle on color 5"))
      << report.summary();
  // The walk names both PEs and the exit directions of the cycle.
  EXPECT_TRUE(has_error(report, Check::DeadlockFreedom,
                        "PE (1, 0) --West--> PE (0, 0) --East--> PE (1, 0)"))
      << report.summary();
}

TEST(VerifyDefects, MissingHandlerAtDeliveryPe) {
  const auto report = verify_program(2, 1, fixtures::missing_handler_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::DeliveryLiveness,
                        "no recv or task handler"))
      << report.summary();
}

TEST(VerifyDefects, ArenaOverflowIsMemoryBudget) {
  const auto report = verify_program(1, 1, fixtures::arena_overflow_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::MemoryBudget, "PE memory overflow"))
      << report.summary();
  // The overflow is reported per PE, not silently re-thrown.
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(VerifyDefects, DefectsScaleWithFabric) {
  // On a wider fabric the missing-handler defect fires on every odd column.
  const auto report = verify_program(4, 2, fixtures::missing_handler_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 4u) << report.summary();
}

// ---------- custom programs: switch liveness + diagnostics plumbing ----------

/// Two switch positions but nobody ever advances the color.
class StuckSwitchProgram final : public wse::PeProgram {
public:
  void on_start(wse::PeContext& ctx) override {
    wse::ColorConfig config;
    config.positions = {
        wse::SwitchPosition{wse::DirMask::of(wse::Dir::Ramp), {}},
        wse::SwitchPosition{wse::DirMask::of(wse::Dir::Ramp), {}}};
    ctx.configure_router(7, config);
  }
  void on_task(wse::PeContext&, wse::Color) override {}
  wse::ProgramManifest manifest(wse::PeCoord coord, i64, i64) const override {
    wse::ProgramManifest m;
    if (coord.x == 0) m.injects |= wse::color_set_bit(7);
    return m;
  }
};

TEST(VerifySwitchLiveness, UnadvancedMultiPositionColorIsAnError) {
  const auto report = verify_program(
      1, 1, [](wse::PeCoord) { return std::make_unique<StuckSwitchProgram>(); });
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::SwitchLiveness, "advance"))
      << report.summary();
}

TEST(VerifyDiagnostics, FormatNamesCheckColorAndPe) {
  const auto report = verify_program(2, 1, fixtures::credit_cycle_defect());
  ASSERT_FALSE(report.diagnostics.empty());
  const std::string line = report.diagnostics.front().format();
  EXPECT_NE(line.find("error[deadlock-freedom]"), std::string::npos) << line;
  EXPECT_NE(line.find("color 5"), std::string::npos) << line;
  EXPECT_NE(line.find("at PE ("), std::string::npos) << line;
}

TEST(VerifyDiagnostics, SummaryLeadsWithVerdict) {
  const auto good = verify_program(2, 2, fixtures::allreduce_program());
  EXPECT_EQ(good.summary().find("fabric verify 2x2: OK"), 0u);
  const auto bad = verify_program(1, 1, fixtures::arena_overflow_defect());
  EXPECT_EQ(bad.summary().find("fabric verify 1x1: FAIL"), 0u);
}

TEST(VerifyApi, RejectsNonPositiveFabric) {
  EXPECT_THROW(verify_program(0, 4, fixtures::allreduce_program()), Error);
  EXPECT_THROW(verify_program(4, -1, fixtures::allreduce_program()), Error);
}

// ---------- solver-facing entry points ----------

TEST(VerifyFabricMember, MatchesFreeFunction) {
  const wse::Fabric fabric(3, 2);
  const auto via_member = fabric.verify(fixtures::halo_program(4));
  const auto via_free = verify_program(3, 2, fixtures::halo_program(4));
  EXPECT_TRUE(via_member.ok()) << via_member.summary();
  EXPECT_EQ(via_member.routes_checked, via_free.routes_checked);
  EXPECT_EQ(via_member.cdg_edges, via_free.cdg_edges);
  EXPECT_EQ(via_member.memory_high_water_bytes,
            via_free.memory_high_water_bytes);
}

TEST(VerifyDataflow, CgDeviceProgramIsClean) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 4, /*seed=*/3, 0.8);
  for (const bool jacobi : {false, true}) {
    core::DataflowConfig config;
    config.jacobi_precondition = jacobi;
    const auto report = core::verify_dataflow(problem, config);
    EXPECT_TRUE(report.ok()) << "jacobi=" << jacobi << ":\n" << report.summary();
    EXPECT_GT(report.colors_traced, 0u);
  }
}

TEST(VerifyDataflow, ChebyshevDeviceProgramIsClean) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 4, /*seed=*/9, 0.8);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  core::ChebyshevDeviceConfig config;
  config.bounds = estimate_spectral_bounds<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); },
      static_cast<std::size_t>(sys.cell_count()));
  const auto report = core::verify_dataflow_chebyshev(problem, config);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(VerifyDataflow, PreflightDoesNotChangeTheSolve) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, /*seed=*/5, 0.8);
  core::DataflowConfig plain;
  plain.tolerance = 1e-10f;
  core::DataflowConfig checked = plain;
  checked.verify_preflight = true;
  const auto a = core::solve_dataflow(problem, plain);
  const auto b = core::solve_dataflow(problem, checked);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.final_rr, b.final_rr);
  EXPECT_EQ(a.delta, b.delta);
}

// ---------- bytecode static layer: lint, manifests, disassembly ----------

namespace bc = wse::bc;

core::CgPeConfig cg_config(u32 nz) {
  core::CgPeConfig config;
  config.nz = nz;
  config.tolerance = 1e-6f;
  config.init.p0.resize(nz, 0.0f);
  return config;
}

core::ChebyshevPeConfig chebyshev_config(u32 nz) {
  core::ChebyshevPeConfig config;
  config.nz = nz;
  config.tolerance = 1e-6f;
  config.lambda_min = 0.05f;
  config.lambda_max = 12.0f;
  config.init.p0.resize(nz, 0.0f);
  return config;
}

core::LoweringSite site_at(wse::PeCoord coord, i64 w, i64 h, u32 nz) {
  return core::plan_site(coord, w, h, wse::PeMemoryParams{}, nz,
                         core::FluxMode::Fused, /*dirichlet_count=*/0,
                         /*jacobi=*/false, /*with_source=*/false);
}

// The wavelet-bearing facts (injections, switch advances, message widths)
// must agree exactly — they drive route checks and the lookahead planner.
// Handler/activation sets only need containment: the hand-written legacy
// manifests declare every completion color a collective could ever bind,
// whereas the instruction stream knows which ones this site actually does
// (a 1x1 fabric, say, never binds the row-neighbor join colors).
void expect_manifest_matches(const wse::ProgramManifest& derived,
                             const wse::ProgramManifest& legacy,
                             const std::string& where) {
  EXPECT_EQ(derived.injects, legacy.injects) << where;
  EXPECT_EQ(derived.advances, legacy.advances) << where;
  EXPECT_EQ(derived.handles & ~legacy.handles, 0u) << where;
  EXPECT_EQ(derived.activates & ~legacy.activates, 0u) << where;
  for (wse::Color c = 0; c < wse::kNumRoutableColors; ++c) {
    if (wse::color_set_contains(legacy.injects, c)) {
      EXPECT_EQ(derived.min_inject_words[c], legacy.min_inject_words[c])
          << where << " color " << static_cast<int>(c);
    }
  }
}

TEST(BytecodeStatic, LoweredProgramsLintCleanOnAllShapes) {
  constexpr u32 nz = 5;
  const auto cg = cg_config(nz);
  const auto cheb = chebyshev_config(nz);
  for (const auto [w, h] : kShapes) {
    for (const wse::PeCoord coord :
         {wse::PeCoord{0, 0}, wse::PeCoord{w - 1, h - 1},
          wse::PeCoord{w / 2, h / 2}}) {
      const auto site = site_at(coord, w, h, nz);
      const auto issues = bc::lint_program(*core::lower_cg(cg, site));
      EXPECT_TRUE(issues.empty())
          << w << "x" << h << " cg: " << issues.front();
      const auto cheb_issues =
          bc::lint_program(*core::lower_chebyshev(cheb, site));
      EXPECT_TRUE(cheb_issues.empty())
          << w << "x" << h << " chebyshev: " << cheb_issues.front();
    }
  }
}

// The derived manifest is what the verifier and the lookahead planner
// consume; it must agree with the hand-written legacy manifests at every
// PE of every shape, including the declared minimum message widths.
TEST(BytecodeStatic, DerivedCgManifestMatchesLegacy) {
  constexpr u32 nz = 4;
  const auto config = cg_config(nz);
  const core::CgPeProgram legacy(config);
  for (const auto [w, h] : kShapes)
    for (i64 y = 0; y < h; ++y)
      for (i64 x = 0; x < w; ++x) {
        const auto site = site_at({x, y}, w, h, nz);
        const auto derived = bc::derive_manifest(*core::lower_cg(config, site));
        std::ostringstream where;
        where << "PE (" << x << ", " << y << ") on " << w << "x" << h;
        expect_manifest_matches(derived, legacy.manifest({x, y}, w, h),
                                where.str());
      }
}

TEST(BytecodeStatic, DerivedChebyshevManifestMatchesLegacy) {
  constexpr u32 nz = 4;
  const auto config = chebyshev_config(nz);
  const core::ChebyshevPeProgram legacy(config);
  for (const auto [w, h] : kShapes)
    for (i64 y = 0; y < h; ++y)
      for (i64 x = 0; x < w; ++x) {
        const auto site = site_at({x, y}, w, h, nz);
        const auto derived =
            bc::derive_manifest(*core::lower_chebyshev(config, site));
        std::ostringstream where;
        where << "PE (" << x << ", " << y << ") on " << w << "x" << h;
        expect_manifest_matches(derived, legacy.manifest({x, y}, w, h),
                                where.str());
      }
}

TEST(BytecodeStatic, DisassemblyListsEveryInstruction) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto program = core::lower_cg(cg_config(4), site);
  const std::string text = bc::disassemble(*program);
  // Header line plus one line per instruction.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            program->code.size() + 1);
  EXPECT_NE(text.find("program \"cg\""), std::string::npos);
  for (const char* mnemonic : {"SEND", "RECV", "VDOT", "VMAC", "JTOL", "HALT"})
    EXPECT_NE(text.find(mnemonic), std::string::npos) << mnemonic;
}

TEST(BytecodeStatic, LintFlagsCorruptedEncodings) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto clean = core::lower_cg(cg_config(4), site);

  bc::Program empty;
  empty.name = "empty";
  ASSERT_FALSE(bc::lint_program(empty).empty());

  bc::Program bad_entry = *clean;
  bad_entry.entry = static_cast<u16>(bad_entry.code.size());
  EXPECT_FALSE(bc::lint_program(bad_entry).empty());

  bc::Program bad_branch = *clean;
  for (auto& ins : bad_branch.code)
    if (ins.op == bc::Op::JMP) {
      ins.d = 0xfffe;
      break;
    }
  EXPECT_FALSE(bc::lint_program(bad_branch).empty());

  bc::Program bad_dsd = *clean;
  for (auto& ins : bad_dsd.code)
    if (ins.op == bc::Op::VDOT) {
      ins.b = static_cast<u8>(bad_dsd.dsds.size());
      break;
    }
  EXPECT_FALSE(bc::lint_program(bad_dsd).empty());
}

// ---------- bytecode control-flow graph ----------

TEST(BytecodeCfg, CoversEveryPcOfALoweredProgram) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto program = core::lower_cg(cg_config(4), site);
  const auto cfg = analysis::build_cfg(*program);
  ASSERT_FALSE(cfg.blocks.empty());
  ASSERT_EQ(cfg.block_of.size(), program->code.size());
  // Every pc belongs to exactly the block whose range covers it, and the
  // blocks partition the stream in ascending pc order.
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    const auto& block = cfg.blocks[b];
    ASSERT_LE(block.first, block.last);
    for (u32 pc = block.first; pc <= block.last; ++pc)
      EXPECT_EQ(cfg.block_of[pc], b) << "pc " << pc;
    for (const u32 s : block.succ) EXPECT_LT(s, cfg.blocks.size());
  }
  // The lowered solver has the program entry plus task handlers and
  // continuations, and no dead code.
  EXPECT_GT(cfg.entries.size(), 1u);
  bool has_start = false, has_handler = false;
  for (const auto& e : cfg.entries) {
    has_start |= e.kind == analysis::CfgEntry::Kind::Start;
    has_handler |= e.kind == analysis::CfgEntry::Kind::Handler;
    EXPECT_TRUE(cfg.pc_reachable(e.pc)) << e.label();
    EXPECT_NE(e.block, analysis::kNoBlock) << e.label();
  }
  EXPECT_TRUE(has_start);
  EXPECT_TRUE(has_handler);
  EXPECT_EQ(cfg.reachable_instructions, program->code.size());
}

TEST(BytecodeCfg, DumpNamesProgramEntriesAndBlocks) {
  const auto site = site_at({0, 0}, 2, 2, 4);
  const auto program = core::lower_cg(cg_config(4), site);
  const auto cfg = analysis::build_cfg(*program);
  const std::string text = analysis::dump_cfg(cfg, *program);
  EXPECT_NE(text.find("cfg \"cg\""), std::string::npos) << text;
  EXPECT_NE(text.find("entry"), std::string::npos);
  EXPECT_NE(text.find("handler c"), std::string::npos);
  EXPECT_NE(text.find("block"), std::string::npos);
}

// ---------- abstract interpreter: unit programs ----------

bool has_defect(const analysis::ProgramAnalysis& a, analysis::BcAnalysis pass,
                analysis::BcSeverity severity, u32 pc,
                const std::string& needle) {
  for (const auto& d : a.defects)
    if (d.analysis == pass && d.severity == severity && d.pc == pc &&
        d.message.find(needle) != std::string::npos)
      return true;
  return false;
}

TEST(BytecodeAbstractInterp, FallingOffTheStreamIsAControlFlowError) {
  bc::Program p;
  p.name = "fall-off";
  bc::Instr ins{};
  ins.op = bc::Op::SETU;
  ins.imm.u = 1;
  p.code.push_back(ins);
  const auto a = analysis::analyze_program(p);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_defect(a, analysis::BcAnalysis::ControlFlow,
                         analysis::BcSeverity::Error, 0, "run past the end"))
      << a.summary(p.name);
}

TEST(BytecodeAbstractInterp, SpanCheckedAgainstTheMemoryLimit) {
  bc::Builder b("span");
  const u8 d = b.dsd(wse::Dsd{0, 4, 1}); // words [0..3]
  b.vmovi(d, 0.0f);
  b.ret();
  const auto program = b.finish();
  analysis::AnalysisParams fits;
  fits.memory_limit_words = 4;
  EXPECT_TRUE(analysis::analyze_program(program, fits).ok());
  analysis::AnalysisParams tight;
  tight.memory_limit_words = 3;
  const auto a = analysis::analyze_program(program, tight);
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(has_defect(a, analysis::BcAnalysis::MemoryBounds,
                         analysis::BcSeverity::Error, 0, ""))
      << a.summary("span");
}

TEST(BytecodeAbstractInterp, SetuBoundedLoopHasAFiniteCostInterval) {
  auto build = [](u32 trips) {
    bc::Builder b("loop");
    b.setu(0, trips);
    const auto loop = b.make_label();
    b.bind(loop);
    b.sadd(0, 0, 0);
    b.decjnz(0, loop);
    b.ret();
    return b.finish();
  };
  const auto three = analysis::analyze_program(build(3));
  EXPECT_TRUE(three.defects.empty()) << three.summary("loop");
  ASSERT_FALSE(three.handlers.empty());
  const auto& h3 = three.handlers.front();
  EXPECT_EQ(h3.label, "entry");
  EXPECT_TRUE(h3.bounded);
  EXPECT_GE(h3.min_charged_ops, 1u);
  EXPECT_GT(h3.max_charged_ops, h3.min_charged_ops);
  EXPECT_LE(h3.min_cycles, h3.max_cycles);
  EXPECT_GT(h3.max_cycles, 0.0);
  // With one trip the shortest and longest activations coincide.
  const auto one = analysis::analyze_program(build(1));
  ASSERT_FALSE(one.handlers.empty());
  EXPECT_TRUE(one.handlers.front().bounded);
  EXPECT_EQ(one.handlers.front().min_charged_ops,
            one.handlers.front().max_charged_ops);
  EXPECT_LT(one.handlers.front().max_cycles, h3.max_cycles);
}

TEST(BytecodeAbstractInterp, DeadCounterStoreIsAWarningNotAnError) {
  bc::Builder b("dead-counter");
  b.setu(1, 4); // never decremented by any reachable DECJNZ/DECRET
  b.ret();
  const auto a = analysis::analyze_program(b.finish());
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.warning_count(), 1u) << a.summary("dead-counter");
  EXPECT_TRUE(has_defect(a, analysis::BcAnalysis::RegisterLiveness,
                         analysis::BcSeverity::Warning, 0,
                         "dead store: counter u1"))
      << a.summary("dead-counter");
}

TEST(BytecodeAbstractInterp, ColorFlowSummarizesReachableSendsAndRecvs) {
  bc::Builder b("flow");
  const u8 out5 = b.dsd(wse::Dsd{0, 5, 1});
  const u8 in7 = b.dsd(wse::Dsd{8, 7, 1});
  b.send(2, out5);
  b.recv(4, in7, wse::kInvalidColor);
  b.ret();
  analysis::AnalysisParams params;
  params.memory_limit_words = 16;
  const auto a = analysis::analyze_program(b.finish(), params);
  EXPECT_TRUE(a.ok()) << a.summary("flow");
  EXPECT_TRUE(a.colors[2].sends);
  EXPECT_EQ(a.colors[2].send_sites, 1u);
  EXPECT_EQ(a.colors[2].min_send_words, 5u);
  EXPECT_EQ(a.colors[2].send_words_total, 5u);
  EXPECT_EQ(a.colors[2].send_lengths, std::vector<u32>{5});
  EXPECT_TRUE(a.colors[4].recvs);
  EXPECT_EQ(a.colors[4].recv_lengths, std::vector<u32>{7});
  EXPECT_FALSE(a.colors[3].sends);
  EXPECT_FALSE(a.colors[3].recvs);
}

TEST(BytecodeAbstractInterp, ShippedCgAnalyzesCleanWithBoundedHandlers) {
  const auto site = site_at({1, 1}, 3, 3, 4);
  const auto program = core::lower_cg(cg_config(4), site);
  const auto a = analysis::analyze_program(*program);
  EXPECT_EQ(a.error_count(), 0u) << a.summary(program->name);
  ASSERT_FALSE(a.handlers.empty());
  for (const auto& h : a.handlers) {
    EXPECT_TRUE(h.bounded) << h.label;
    EXPECT_LE(h.min_cycles, h.max_cycles) << h.label;
    EXPECT_LE(h.min_charged_ops, h.max_charged_ops) << h.label;
  }
  // The solver demonstrably injects: exported minimum send words feed the
  // lookahead planner and must be at least one word per sending color.
  u32 sending = 0;
  for (const auto& c : a.colors)
    if (c.sends) {
      ++sending;
      EXPECT_GE(c.min_send_words, 1u);
      EXPECT_GE(c.send_words_total, c.min_send_words);
    }
  EXPECT_GT(sending, 0u);
}

// ---------- seeded bytecode defects through the verifier (pc-accurate) ----------

const Diagnostic* find_diag(const VerifyReport& report, Check check) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.check == check) return &d;
  return nullptr;
}

TEST(BytecodeDefects, OobSpanReportedAtPcZero) {
  const auto report = verify_program(1, 1, fixtures::bc_oob_span_defect());
  EXPECT_FALSE(report.ok());
  const auto* d = find_diag(report, Check::BytecodeMemory);
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pc, 0);
  EXPECT_NE(d->message.find("bc-oob-span"), std::string::npos) << d->message;
}

TEST(BytecodeDefects, UnsetContinuationReportedAtPcZero) {
  const auto report =
      verify_program(1, 1, fixtures::bc_unset_continuation_defect());
  EXPECT_FALSE(report.ok());
  const auto* d = find_diag(report, Check::BytecodeLiveness);
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pc, 0);
  EXPECT_NE(d->message.find("cont0"), std::string::npos) << d->message;
}

TEST(BytecodeDefects, ZeroCounterLoopIsUnboundedAtTheLatch) {
  const auto report = verify_program(1, 1, fixtures::bc_unbounded_loop_defect());
  EXPECT_FALSE(report.ok());
  const auto* d = find_diag(report, Check::BytecodeCost);
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pc, 2); // the DECJNZ latch
  EXPECT_NE(d->message.find("wraps"), std::string::npos) << d->message;
}

TEST(BytecodeDefects, SendOverlapIsAWarningAtTheStore) {
  const auto report = verify_program(1, 1, fixtures::bc_send_overlap_defect());
  // Hardware-faithfulness warning: the simulator gathers at send time, so
  // the defect must not gate verification.
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.warning_count(), 1u);
  const auto* d = find_diag(report, Check::BytecodeMemory);
  ASSERT_NE(d, nullptr) << report.summary();
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->pc, 3); // the STOS into the in-flight payload
  EXPECT_NE(d->message.find("SEND"), std::string::npos) << d->message;
}

TEST(BytecodeDefects, UnbalancedLengthsFailBalanceAtTheReceiver) {
  const auto report =
      verify_program(2, 1, fixtures::bc_unbalanced_send_defect());
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_error(report, Check::SendRecvBalance, "registered lengths"))
      << report.summary();
  const auto* d = find_diag(report, Check::SendRecvBalance);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pe.x, 1);
  EXPECT_EQ(d->pe.y, 0);
  EXPECT_EQ(d->color, 5);
}

// ---------- deep verification of the shipped solvers ----------

TEST(BytecodeDeep, ShippedSolversVerifyCleanOnRepresentativeShapes) {
  constexpr Shape kDeep[] = {{2, 2}, {3, 5}, {8, 8}};
  for (const auto [w, h] : kDeep) {
    const auto problem =
        FlowProblem::quarter_five_spot(w, h, 4, /*seed=*/3, 0.8);
    const auto cg = core::verify_dataflow(problem, core::DataflowConfig{});
    EXPECT_EQ(cg.error_count(), 0u) << w << "x" << h << ":\n" << cg.summary();
    EXPECT_GT(cg.bytecode_programs, 0u);
    // Anything that remains must be the documented send-overlap
    // hardware-faithfulness warning class, nothing else.
    for (const Diagnostic& d : cg.diagnostics) {
      EXPECT_EQ(d.severity, Severity::Warning) << d.format();
      EXPECT_EQ(d.check, Check::BytecodeMemory) << d.format();
      EXPECT_NE(d.message.find("SEND"), std::string::npos) << d.format();
    }
    core::ChebyshevDeviceConfig cheb;
    cheb.bounds = {0.05, 12.0};
    const auto cb = core::verify_dataflow_chebyshev(problem, cheb);
    EXPECT_EQ(cb.error_count(), 0u) << w << "x" << h << ":\n" << cb.summary();
    EXPECT_GT(cb.bytecode_programs, 0u);
  }
}

TEST(BytecodeDeep, BalanceSummariesCoverEveryTrafficColor) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, /*seed=*/3, 0.8);
  const auto report = core::verify_dataflow(problem, core::DataflowConfig{});
  ASSERT_EQ(report.error_count(), 0u) << report.summary();
  ASSERT_FALSE(report.balance.empty());
  bool exact_with_volume = false;
  for (const auto& b : report.balance) {
    EXPECT_GT(b.injectors, 0u) << "color " << static_cast<int>(b.color);
    EXPECT_GT(b.delivery_sites, 0u) << "color " << static_cast<int>(b.color);
    exact_with_volume |= b.exact && b.words_per_round > 0;
  }
  EXPECT_TRUE(exact_with_volume);
  // The summary text carries the counters fabric_lint prints.
  const std::string text = report.summary();
  EXPECT_NE(text.find("balance: color"), std::string::npos) << text;
  EXPECT_NE(text.find("abstractly interpreted"), std::string::npos) << text;
}

// ---------- bytecode-derived lookahead windows ----------

TEST(BytecodeLookahead, WindowsNoLooserThanManifestDerived) {
  const auto problem = FlowProblem::quarter_five_spot(8, 8, 4, /*seed=*/3, 0.8);
  core::DataflowConfig config;
  config.sim_threads = 4;
  const auto plan = core::plan_dataflow_lookahead(problem, config);
  ASSERT_GT(plan.shard_count, 1u);
  ASSERT_EQ(plan.tile_rows * plan.tile_cols, plan.shard_count);
  ASSERT_EQ(plan.bytecode.out.size(), plan.shard_count);
  ASSERT_EQ(plan.manifest.out.size(), plan.shard_count);
  bool positive_floor = false;
  for (u32 s = 0; s < plan.shard_count; ++s)
    for (std::size_t d = 0; d < 4; ++d) {
      const auto& bcode = plan.bytecode.out[s][d];
      const auto& man = plan.manifest.out[s][d];
      // Tighter or equal: bytecode may prove a boundary silent or raise
      // the batch floor, never the reverse.
      EXPECT_TRUE(man.crosses || !bcode.crosses)
          << "shard " << s << " side " << d;
      if (bcode.crosses && man.crosses)
        EXPECT_GE(bcode.min_batch_cycles, man.min_batch_cycles)
            << "shard " << s << " side " << d;
      positive_floor |= bcode.crosses && bcode.min_batch_cycles > 0;
    }
  EXPECT_TRUE(positive_floor);
}

// ---------- lint: register operands per encoding ----------

TEST(BytecodeStatic, LintFlagsEveryRegisterOperandClass) {
  auto instr = [](bc::Op op, u8 a, u8 b, u8 c, u32 d) {
    bc::Instr ins{};
    ins.op = op;
    ins.a = a;
    ins.b = b;
    ins.c = c;
    ins.d = d;
    return ins;
  };
  struct BadEncoding {
    const char* label;
    bc::Instr ins;
    const char* needle;
  };
  const BadEncoding cases[] = {
      {"sadd-dest", instr(bc::Op::SADD, 16, 0, 0, 0), "f-register f16"},
      {"sadd-rhs", instr(bc::Op::SADD, 0, 0, 16, 0), "f-register f16"},
      {"vdot-dest", instr(bc::Op::VDOT, 16, 0, 0, 0), "f-register f16"},
      {"lods-dest", instr(bc::Op::LODS, 16, 0, 0, 0), "f-register f16"},
      {"movr-src", instr(bc::Op::MOVR, 0, 16, 0, 0), "f-register f16"},
      {"umovi-dest", instr(bc::Op::UMOVI, 16, 0, 0, 0), "f-register f16"},
      {"jtol-operand", instr(bc::Op::JTOL, 16, 0, 0, 1), "f-register f16"},
      {"jgtr-rhs", instr(bc::Op::JGTR, 0, 16, 0, 1), "f-register f16"},
      {"smuli-src", instr(bc::Op::SMULI, 0, 16, 0, 0), "f-register f16"},
      {"usub-rhs", instr(bc::Op::USUB, 0, 0, 16, 0), "f-register f16"},
      {"urcp-src", instr(bc::Op::URCP, 0, 16, 0, 0), "f-register f16"},
      {"uk2f-dest", instr(bc::Op::UK2F, 16, 0, 0, 0), "f-register f16"},
      {"chkpos-operand", instr(bc::Op::CHKPOS, 16, 0, 0, 0), "f-register f16"},
      {"vmulr-scale", instr(bc::Op::VMULR, 0, 0, 0, 16), "f-register f16"},
      {"vmacr-scale", instr(bc::Op::VMACR, 0, 0, 0, 16), "f-register f16"},
      {"decjnz-counter", instr(bc::Op::DECJNZ, 4, 0, 0, 1), "u-register u4"},
      {"decret-counter", instr(bc::Op::DECRET, 4, 0, 0, 0), "u-register u4"},
      {"setu-counter", instr(bc::Op::SETU, 4, 0, 0, 0), "u-register u4"},
      {"setc-register", instr(bc::Op::SETC, 4, 0, 0, 1),
       "continuation register cont4"},
      {"jind-register", instr(bc::Op::JIND, 4, 0, 0, 0),
       "continuation register cont4"},
  };
  for (const auto& bad : cases) {
    bc::Program p;
    p.name = bad.label;
    p.dsds.push_back(wse::Dsd{0, 1, 1});
    p.code.push_back(bad.ins);
    bc::Instr ret{};
    ret.op = bc::Op::RET;
    p.code.push_back(ret);
    const auto issues = bc::lint_program(p);
    bool found = false;
    for (const auto& issue : issues)
      found |= issue.find(bad.needle) != std::string::npos;
    EXPECT_TRUE(found) << bad.label << ": "
                       << (issues.empty() ? "lint reported nothing"
                                          : issues.front());
  }
  // A JKGE against a constant the pool does not hold.
  bc::Program p;
  p.name = "jkge-const";
  bc::Instr jkge{};
  jkge.op = bc::Op::JKGE;
  jkge.d = 1;
  jkge.imm.u = 5;
  p.code.push_back(jkge);
  bc::Instr ret{};
  ret.op = bc::Op::RET;
  p.code.push_back(ret);
  const auto issues = bc::lint_program(p);
  bool found = false;
  for (const auto& issue : issues)
    found |= issue.find("constant index 5 out of range") != std::string::npos;
  EXPECT_TRUE(found);
}

} // namespace
} // namespace fvdf
