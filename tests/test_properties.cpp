// Property-based tests: randomized sweeps over algebraic invariants that
// must hold for *any* input — operator linearity/symmetry, scaling laws of
// the discretization, reduction-order tolerance of the fabric all-reduce,
// bit-exact determinism of the simulator, model monotonicity, and
// allocator accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/residual.hpp"
#include "fv/problem.hpp"
#include "gpu/kernels.hpp"
#include "perf/analytic.hpp"
#include "solver/blas.hpp"
#include "solver/cg.hpp"
#include "solver/dense.hpp"
#include "umesh/fabric_map.hpp"
#include "wse/fabric.hpp"

namespace fvdf {
namespace {

// ---------- operator algebra ----------

class OperatorProperties : public ::testing::TestWithParam<u64> {};

TEST_P(OperatorProperties, ApplyIsLinear) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 3, GetParam());
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(GetParam() * 31 + 1);
  std::vector<f64> x(n), y(n), ax(n), ay(n), combo(n), acombo(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  const f64 a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a * x[i] + b * y[i];
  op.apply(x.data(), ax.data());
  op.apply(y.data(), ay.data());
  op.apply(combo.data(), acombo.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(acombo[i], a * ax[i] + b * ay[i], 1e-10);
}

TEST_P(OperatorProperties, PermeabilityScalingScalesTheOperator) {
  // Scaling permeability by c scales every transmissibility — and hence
  // the interior operator — by exactly c (harmonic mean is homogeneous).
  const u64 seed = GetParam();
  const CartesianMesh3D mesh(4, 4, 3);
  Rng rng(seed);
  auto perm1 = perm::lognormal(mesh, rng, 0.0, 1.0);
  auto perm2 = perm1;
  const f64 c = 3.25;
  for (auto& v : perm2.data()) v *= c;
  const FlowProblem p1(mesh, std::move(perm1), 1.0, DirichletSet{});
  const FlowProblem p2(mesh, std::move(perm2), 1.0, DirichletSet{});
  const auto s1 = p1.discretize<f64>();
  const auto s2 = p2.discretize<f64>();
  const MatrixFreeOperator<f64> op1(s1), op2(s2);
  const auto n = static_cast<std::size_t>(s1.cell_count());
  Rng vec_rng(seed + 100);
  std::vector<f64> x(n), y1(n), y2(n);
  for (auto& v : x) v = vec_rng.uniform(-1, 1);
  op1.apply(x.data(), y1.data());
  op2.apply(x.data(), y2.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y2[i], c * y1[i], 1e-9);
}

TEST_P(OperatorProperties, ViscosityInverselyScalesTheOperator) {
  const u64 seed = GetParam();
  const CartesianMesh3D mesh(3, 4, 4);
  Rng rng(seed);
  auto perm_field = perm::lognormal(mesh, rng, 0.0, 0.7);
  const FlowProblem thin(mesh, perm_field, 1.0, DirichletSet{});
  const FlowProblem thick(mesh, perm_field, 4.0, DirichletSet{});
  const auto s1 = thin.discretize<f64>();
  const auto s2 = thick.discretize<f64>();
  const MatrixFreeOperator<f64> op1(s1), op2(s2);
  const auto n = static_cast<std::size_t>(s1.cell_count());
  std::vector<f64> x(n), y1(n), y2(n);
  Rng vec_rng(seed + 7);
  for (auto& v : x) v = vec_rng.uniform(-1, 1);
  op1.apply(x.data(), y1.data());
  op2.apply(x.data(), y2.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], 4.0 * y2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorProperties, ::testing::Values(1, 2, 3, 4, 5));

// ---------- CG on random SPD systems ----------

class CgProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgProperties, SolvesRandomSpdSystemToDirectAccuracy) {
  const std::size_t n = GetParam();
  Rng rng(n * 977);
  DenseMatrix a(n);
  // A = B^T B + n*I is SPD with controlled conditioning.
  DenseMatrix b_mat(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b_mat.at(i, j) = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      f64 acc = 0;
      for (std::size_t k = 0; k < n; ++k) acc += b_mat.at(k, i) * b_mat.at(k, j);
      a.at(i, j) = acc + (i == j ? static_cast<f64>(n) : 0.0);
    }
  std::vector<f64> rhs(n), y(n);
  for (auto& v : rhs) v = rng.uniform(-1, 1);

  const auto result = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { a.apply(in, out); }, rhs.data(), y.data(), n,
      {.max_iterations = 4 * n, .tolerance = 1e-26});
  ASSERT_TRUE(result.converged) << "n=" << n;
  const auto oracle = lu_solve(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], oracle[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgProperties,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55));

// ---------- fabric determinism & reduction tolerance ----------

TEST(FabricProperties, FullSolveIsBitwiseDeterministic) {
  auto run = [] {
    const auto problem = FlowProblem::quarter_five_spot(5, 4, 6, 77, 1.2);
    core::DataflowConfig config;
    config.tolerance = 1e-13f;
    return core::solve_dataflow(problem, config);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.device_cycles, b.device_cycles);
  EXPECT_EQ(a.fabric.events_processed, b.fabric.events_processed);
  ASSERT_EQ(a.pressure.size(), b.pressure.size());
  for (std::size_t i = 0; i < a.pressure.size(); ++i)
    EXPECT_EQ(a.pressure[i], b.pressure[i]) << "bitwise mismatch at " << i;
}

TEST(FabricProperties, TimingOnlyPerturbsFp32RoundingNotTheSolution) {
  // The event-driven kernel accumulates each face's flux the moment its
  // halo lands (Sec. III-B), so link timing changes the fp32 *accumulation
  // order* — real hardware behaves the same way. The property that must
  // hold: the converged solution agrees to fp32 accuracy and the extra
  // latency only makes the run slower, never wrong.
  const auto problem = FlowProblem::quarter_five_spot(4, 5, 4, 11);
  core::DataflowConfig fast;
  fast.tolerance = 1e-13f;
  const auto a = core::solve_dataflow(problem, fast);

  core::DataflowConfig slow = fast;
  slow.timing.hop_latency_cycles = 37.0;
  slow.timing.words_per_cycle_link = 0.25;
  slow.timing.task_dispatch_cycles = 99.0;
  const auto b = core::solve_dataflow(problem, slow);

  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(static_cast<f64>(a.iterations), static_cast<f64>(b.iterations), 3.0);
  for (std::size_t i = 0; i < a.pressure.size(); ++i)
    EXPECT_NEAR(a.pressure[i], b.pressure[i], 2e-5f);
  EXPECT_GT(b.device_cycles, a.device_cycles);
}

// ---------- blas / gpu reductions ----------

class DotProperties : public ::testing::TestWithParam<u64> {};

TEST_P(DotProperties, GpuDotMatchesHostDotOnRandomData) {
  Rng rng(GetParam());
  const u64 n = 1 + rng.uniform_index(5000);
  std::vector<f32> a(n), b(n);
  for (u64 i = 0; i < n; ++i) {
    a[i] = static_cast<f32>(rng.uniform(-10, 10));
    b[i] = static_cast<f32>(rng.uniform(-10, 10));
  }
  gpu::CudaDevice device(GpuSpec::a100(), 2);
  const f64 gpu_dot = gpu::launch_dot(device, a.data(), b.data(), n);
  const f64 host_dot = blas::dot(a.data(), b.data(), n);
  EXPECT_NEAR(gpu_dot, host_dot, 1e-2 + 1e-4 * static_cast<f64>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DotProperties, ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- analytic model monotonicity ----------

TEST(ModelProperties, Cs2TimesAreMonotoneInEveryArgument) {
  const Cs2AnalyticModel model;
  for (i64 nz : {10, 100, 922})
    EXPECT_LT(model.alg2_time(nz, 10), model.alg2_time(nz + 1, 10));
  for (u64 iters : {1ull, 10ull, 225ull})
    EXPECT_LT(model.alg2_time(100, iters), model.alg2_time(100, iters + 1));
  EXPECT_LT(model.alg1_time(100, 100, 50, 10), model.alg1_time(101, 100, 50, 10));
  EXPECT_LT(model.alg1_time(100, 100, 50, 10), model.alg1_time(100, 101, 50, 10));
  EXPECT_LT(model.comm_time(100, 100, 5), model.comm_time(100, 101, 5));
  // Alg-1 strictly dominates Alg-2 (it contains it).
  for (i64 dim : {50, 200, 750})
    EXPECT_GT(model.alg1_time(dim, dim, 922, 225), model.alg2_time(922, 225));
}

TEST(ModelProperties, GpuTimesAreMonotoneAndOccupancyBounded) {
  const GpuAnalyticModel model(GpuSpec::a100());
  u64 prev_cells = 1000;
  for (u64 cells : {10'000ull, 1'000'000ull, 100'000'000ull}) {
    EXPECT_GT(model.alg2_time(cells, 5), model.alg2_time(prev_cells, 5));
    EXPECT_GT(model.occupancy(cells), model.occupancy(prev_cells));
    EXPECT_LT(model.occupancy(cells), 1.0);
    prev_cells = cells;
  }
}

// ---------- mapping invariants ----------

class MappingProperties : public ::testing::TestWithParam<u64> {};

TEST_P(MappingProperties, PartitionInvariantsHoldForRandomSeeds) {
  const CartesianMesh3D mesh(9, 7, 3);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh_geom = umesh::UnstructuredMesh::from_cartesian(mesh, field);
  umesh::MappingOptions options;
  options.fabric_width = 4;
  options.fabric_height = 3;
  options.seed = GetParam();
  const auto mapping =
      umesh::map_cells(umesh_geom, umesh::MappingStrategy::Random, options);
  const auto report = umesh::evaluate_mapping(umesh_geom, mapping, options);

  // Every cell assigned; loads sum to n; uncut + cut == faces.
  EXPECT_EQ(report.cells, static_cast<u64>(mesh.cell_count()));
  EXPECT_LE(report.min_cells_per_pe, report.max_cells_per_pe);
  EXPECT_LE(report.max_cells_per_pe - report.min_cells_per_pe, 1u);
  EXPECT_LE(report.cut_faces, umesh_geom.faces().size());
  // Each cut face travels at least one hop.
  EXPECT_GE(report.total_hop_weight, report.cut_faces);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperties, ::testing::Values(1, 7, 42, 1234));

// ---------- allocator accounting ----------

TEST(MemoryProperties, RandomAllocationSequencesAccountExactly) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    wse::PeMemory mem(16384, 0);
    u64 expected = 0;
    for (int i = 0; i < 50; ++i) {
      const u32 count = 1 + static_cast<u32>(rng.uniform_index(20));
      if (rng.uniform() < 0.5) {
        (void)mem.alloc_f32("a" + std::to_string(i), count);
        expected += count * 4u;
      } else {
        (void)mem.alloc_bytes("b" + std::to_string(i), count);
        expected += (count + 3u) & ~3u;
      }
      EXPECT_EQ(mem.used_bytes(), expected);
      EXPECT_EQ(mem.free_bytes(), 16384 - expected);
    }
  }
}

// ---------- formatting round trips ----------

TEST(FormatProperties, CountFormattingPreservesDigits) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 value = rng.next_u64() % 1'000'000'000'000ull;
    std::string formatted = fmt_count(value);
    std::string digits;
    for (char c : formatted)
      if (c != ',') digits += c;
    EXPECT_EQ(digits, std::to_string(value));
    // Separators every three digits from the right.
    if (formatted.size() > 3) {
      const auto comma = formatted.find(',');
      ASSERT_NE(comma, std::string::npos);
      EXPECT_LE(comma, 3u);
    }
  }
}

// ---------- residual/operator consistency ----------

class ResidualProperties : public ::testing::TestWithParam<u64> {};

TEST_P(ResidualProperties, ResidualEqualsNegatedOperatorOnInterior) {
  // For any pressure field satisfying the BCs, r(Eq.3) = -(A p) on interior
  // rows — the identity the device INIT pass relies on.
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 3, GetParam());
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());

  Rng rng(GetParam() + 500);
  std::vector<f64> p(n);
  for (auto& v : p) v = rng.uniform(0, 1);
  for (const auto& [idx, value] : problem.bc().sorted())
    p[static_cast<std::size_t>(idx)] = value;

  const auto r = compute_residual(problem.mesh(), problem.transmissibility(),
                                  problem.mobility(), problem.bc(), p);
  std::vector<f64> ap(n);
  op.apply(p.data(), ap.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (problem.bc().contains(static_cast<CellIndex>(i))) {
      EXPECT_NEAR(r[i], 0.0, 1e-12);
    } else {
      EXPECT_NEAR(r[i], -ap[i], 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResidualProperties, ::testing::Values(1, 2, 3));

// ---------- device/host cross-property ----------

class CrossProperties : public ::testing::TestWithParam<u64> {};

TEST_P(CrossProperties, DeviceSolutionSatisfiesEq3ToF32Accuracy) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 4, GetParam(), 1.0);
  core::DataflowConfig config;
  config.tolerance = 1e-14f;
  const auto result = core::solve_dataflow(problem, config);
  ASSERT_TRUE(result.converged);
  std::vector<f64> p(result.pressure.begin(), result.pressure.end());
  const auto r = compute_residual(problem.mesh(), problem.transmissibility(),
                                  problem.mobility(), problem.bc(), p);
  EXPECT_LT(blas::norm2(r.data(), r.size()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossProperties, ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace fvdf
