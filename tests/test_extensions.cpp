// Tests for the documented extensions over the paper's kernels:
// Jacobi-preconditioned CG (host + simulated device), the backward-Euler
// transient driver (host + device), and the matrix-free diagonal
// extraction they build on.

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/assembled.hpp"
#include "fv/diagonal.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"
#include "solver/transient.hpp"

namespace fvdf {
namespace {

// ---------- diagonal extraction ----------

TEST(Diagonal, MatchesAssembledCsrDiagonal) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 3, 99);
  const auto sys = problem.discretize<f64>();
  const auto diag = jacobian_diagonal(sys);
  const AssembledOperator<f64> csr(sys);
  for (CellIndex row = 0; row < csr.size(); ++row) {
    f64 csr_diag = 0;
    for (CellIndex e = csr.row_ptr()[static_cast<std::size_t>(row)];
         e < csr.row_ptr()[static_cast<std::size_t>(row) + 1]; ++e)
      if (csr.col_idx()[static_cast<std::size_t>(e)] == row)
        csr_diag = csr.values()[static_cast<std::size_t>(e)];
    EXPECT_NEAR(diag[static_cast<std::size_t>(row)], csr_diag, 1e-12);
  }
}

TEST(Diagonal, DirichletRowsAreOne) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 2);
  const auto sys = problem.discretize<f64>();
  const auto diag = jacobian_diagonal(sys);
  for (const auto& [idx, value] : problem.bc().sorted())
    EXPECT_DOUBLE_EQ(diag[static_cast<std::size_t>(idx)], 1.0);
}

TEST(Diagonal, InverseIsElementwiseReciprocal) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 2, 5);
  const auto sys = problem.discretize<f64>();
  const auto diag = jacobian_diagonal(sys);
  const auto minv = jacobi_inverse_diagonal(sys);
  for (std::size_t i = 0; i < diag.size(); ++i)
    EXPECT_NEAR(minv[i] * diag[i], 1.0, 1e-12);
}

TEST(Diagonal, IsolatedCellThrowsOnInverse) {
  // A 1x1x1 mesh with no BC has an all-zero row: the planner must refuse.
  const CartesianMesh3D mesh(1, 1, 1);
  const FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, DirichletSet{});
  const auto sys = problem.discretize<f64>();
  EXPECT_THROW(jacobi_inverse_diagonal(sys), Error);
}

// ---------- host PCG ----------

TEST(JacobiPcg, MatchesPlainCgSolution) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 4, 17, 1.5);
  CgOptions options;
  options.tolerance = 1e-22;
  const auto plain = solve_pressure_host(problem, options);
  const auto pcg = solve_pressure_host_jacobi(problem, options);
  ASSERT_TRUE(plain.cg.converged);
  ASSERT_TRUE(pcg.cg.converged);
  for (std::size_t i = 0; i < plain.pressure.size(); ++i)
    EXPECT_NEAR(pcg.pressure[i], plain.pressure[i], 1e-8);
}

TEST(JacobiPcg, ReducesIterationsOnHighContrastFields) {
  // Jacobi scaling pays off when the diagonal varies wildly (strong
  // permeability contrast).
  CgOptions options;
  options.tolerance = 1e-20;
  const auto problem = FlowProblem::quarter_five_spot(10, 10, 4, 7, /*log_sigma=*/3.0);
  const auto plain = solve_pressure_host(problem, options);
  const auto pcg = solve_pressure_host_jacobi(problem, options);
  ASSERT_TRUE(plain.cg.converged);
  ASSERT_TRUE(pcg.cg.converged);
  EXPECT_LT(pcg.cg.iterations, plain.cg.iterations);
}

TEST(JacobiPcg, IdentityPreconditionerReducesToPlainCg) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 3, 3);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> b(n, 0.0);
  b[static_cast<std::size_t>(problem.mesh().index(1, 1, 1))] = 1.0;
  std::vector<f64> y1(n), y2(n);
  CgOptions options;
  options.tolerance = 1e-24;
  const auto apply = [&](const f64* in, f64* out) { op.apply(in, out); };
  const auto r1 = conjugate_gradient<f64>(apply, b.data(), y1.data(), n, options);
  const auto r2 = preconditioned_conjugate_gradient<f64>(
      apply, [&](const f64* in, f64* out) { std::copy(in, in + n, out); }, b.data(),
      y2.data(), n, options);
  EXPECT_EQ(r1.iterations, r2.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

// ---------- device PCG ----------

TEST(DevicePcg, MatchesHostPcgSolution) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 4, 21, 2.0);
  core::DataflowConfig config;
  config.jacobi_precondition = true;
  config.tolerance = 1e-14f;
  const auto device = core::solve_dataflow(problem, config);
  ASSERT_TRUE(device.converged);
  const auto report = core::compare_with_host(problem, device, 1e-24);
  EXPECT_LT(report.rel_l2_error, 5e-5) << report.summary();
}

TEST(DevicePcg, IterationCountTracksHostPcg) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 3, 8, 2.5);
  core::DataflowConfig config;
  config.jacobi_precondition = true;
  config.tolerance = 1e-13f;
  const auto device = core::solve_dataflow(problem, config);

  CgOptions options;
  options.tolerance = 1e-13;
  const auto host = solve_pressure_host_jacobi(problem, options);
  ASSERT_TRUE(device.converged);
  ASSERT_TRUE(host.cg.converged);
  EXPECT_NEAR(static_cast<f64>(device.iterations),
              static_cast<f64>(host.cg.iterations),
              std::max(3.0, 0.25 * static_cast<f64>(host.cg.iterations)));
}

TEST(DevicePcg, BeatsPlainDeviceCgOnContrastField) {
  const auto problem = FlowProblem::quarter_five_spot(8, 8, 3, 5, 3.0);
  core::DataflowConfig plain;
  plain.tolerance = 1e-12f;
  plain.max_iterations = 5000;
  const auto cg = core::solve_dataflow(problem, plain);

  core::DataflowConfig pcg = plain;
  pcg.jacobi_precondition = true;
  const auto preconditioned = core::solve_dataflow(problem, pcg);

  ASSERT_TRUE(cg.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, cg.iterations);
}

TEST(DevicePcg, WorksWithOnTheFlyKernel) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, 2);
  core::DataflowConfig config;
  config.jacobi_precondition = true;
  config.flux_mode = core::FluxMode::OnTheFly;
  config.tolerance = 1e-14f;
  const auto device = core::solve_dataflow(problem, config);
  ASSERT_TRUE(device.converged);
  const auto report = core::compare_with_host(problem, device, 1e-24);
  EXPECT_LT(report.rel_l2_error, 5e-5);
}

// ---------- transient (backward Euler) ----------

TEST(Transient, ConvergesToSteadyStateForManySteps) {
  const auto problem = FlowProblem::homogeneous_column(6, 6, 2);
  TransientOptions options;
  options.dt = 5.0;
  options.steps = 200;
  options.cg.tolerance = 1e-24;
  const auto transient = solve_transient_host(problem, options);
  ASSERT_TRUE(transient.all_converged);

  CgOptions steady_options;
  steady_options.tolerance = 1e-24;
  const auto steady = solve_pressure_host(problem, steady_options);
  for (std::size_t i = 0; i < steady.pressure.size(); ++i)
    EXPECT_NEAR(transient.pressure[i], steady.pressure[i], 1e-4);
}

TEST(Transient, TinyTimeStepBarelyMoves) {
  const auto problem = FlowProblem::homogeneous_column(5, 5, 2);
  TransientOptions options;
  options.dt = 1e-8; // sigma huge -> accumulation dominates -> p ~ p^0
  options.steps = 1;
  options.cg.tolerance = 1e-26;
  const auto result = solve_transient_host(problem, options);
  const auto p0 = problem.initial_pressure();
  f64 max_move = 0;
  for (std::size_t i = 0; i < p0.size(); ++i)
    max_move = std::max(max_move, std::fabs(result.pressure[i] - p0[i]));
  EXPECT_LT(max_move, 1e-4);
}

TEST(Transient, PressureFrontAdvancesMonotonically) {
  // The diffusive front: pressure at a probe cell rises monotonically
  // toward its steady value as injection proceeds.
  const auto problem = FlowProblem::homogeneous_column(8, 8, 1);
  TransientOptions options;
  options.dt = 0.4;
  options.steps = 25;
  options.record_history = true;
  options.cg.tolerance = 1e-24;
  const auto result = solve_transient_host(problem, options);
  ASSERT_TRUE(result.all_converged);
  const auto probe = static_cast<std::size_t>(problem.mesh().index(4, 4, 0));
  for (std::size_t step = 1; step < result.history.size(); ++step)
    EXPECT_GE(result.history[step][probe], result.history[step - 1][probe] - 1e-12);
  // And it moved by a nontrivial amount overall.
  EXPECT_GT(result.history.back()[probe] - result.history.front()[probe], 1e-3);
}

TEST(Transient, DirichletCellsStayPinnedThroughTime) {
  const auto problem = FlowProblem::homogeneous_column(5, 5, 3);
  TransientOptions options;
  options.dt = 1.0;
  options.steps = 5;
  options.cg.tolerance = 1e-24;
  const auto result = solve_transient_host(problem, options);
  for (const auto& [idx, value] : problem.bc().sorted())
    EXPECT_NEAR(result.pressure[static_cast<std::size_t>(idx)], value, 1e-10);
}

TEST(Transient, PlainCgAndPcgAgree) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 2, 77);
  TransientOptions options;
  options.dt = 0.5;
  options.steps = 4;
  options.cg.tolerance = 1e-24;
  options.jacobi = false;
  const auto plain = solve_transient_host(problem, options);
  options.jacobi = true;
  const auto pcg = solve_transient_host(problem, options);
  for (std::size_t i = 0; i < plain.pressure.size(); ++i)
    EXPECT_NEAR(plain.pressure[i], pcg.pressure[i], 1e-8);
}

TEST(TransientDataflow, MatchesHostTransient) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 3, 31);
  const f64 dt = 0.5, phi = 0.2, ct = 1e-2;
  const i64 steps = 3;

  TransientOptions host_options;
  host_options.dt = dt;
  host_options.steps = steps;
  host_options.porosity = phi;
  host_options.total_compressibility = ct;
  host_options.cg.tolerance = 1e-24;
  const auto host = solve_transient_host(problem, host_options);
  ASSERT_TRUE(host.all_converged);

  core::DataflowConfig config;
  config.tolerance = 1e-15f;
  const auto device =
      core::solve_transient_dataflow(problem, dt, steps, phi, ct, config);
  ASSERT_TRUE(device.all_converged);
  EXPECT_EQ(device.iterations_per_step.size(), static_cast<std::size_t>(steps));

  for (std::size_t i = 0; i < host.pressure.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(device.pressure[i]), host.pressure[i], 1e-4);
}

TEST(TransientDataflow, ShiftReducesIterationCount) {
  // The accumulation term improves conditioning: a transient step should
  // take no more iterations than the steady solve.
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 3, 13, 1.5);
  core::DataflowConfig steady;
  steady.tolerance = 1e-13f;
  const auto steady_solve = core::solve_dataflow(problem, steady);

  core::DataflowConfig shifted = steady;
  shifted.diagonal_shift = 2.0f; // strong accumulation
  const auto shifted_solve = core::solve_dataflow(problem, shifted);
  ASSERT_TRUE(steady_solve.converged);
  ASSERT_TRUE(shifted_solve.converged);
  EXPECT_LE(shifted_solve.iterations, steady_solve.iterations);
}

TEST(DevicePcg, MemoryPlannerAccountsForPcgBuffers) {
  wse::PeMemory plain_mem;
  (void)core::PeLayout::plan(plain_mem, 64, core::FluxMode::Fused, 0, false);
  wse::PeMemory pcg_mem;
  (void)core::PeLayout::plan(pcg_mem, 64, core::FluxMode::Fused, 0, true);
  EXPECT_EQ(pcg_mem.used_bytes() - plain_mem.used_bytes(), 2u * 64 * 4);
}

} // namespace
} // namespace fvdf
