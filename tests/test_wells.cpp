// Rate-controlled well (source-term) tests across every implementation:
// residual semantics, host/device/GPU agreement, flux balance (total
// produced at the pressure well equals total injected by rate wells),
// superposition, and transient behavior with sources.

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "fv/residual.hpp"
#include "gpu/gpu_solver.hpp"
#include "solver/blas.hpp"
#include "solver/pressure_solve.hpp"
#include "solver/transient.hpp"

namespace fvdf {
namespace {

// A producer column pinned at p=0 in one corner plus one rate-controlled
// injector cell in the opposite corner.
FlowProblem rate_well_problem(i64 n, f64 rate, u64 seed = 3) {
  CartesianMesh3D mesh(n, n, 2);
  Rng rng(seed);
  auto perm = perm::lognormal(mesh, rng, 0.0, 0.7);
  DirichletSet bc;
  for (i64 z = 0; z < 2; ++z) bc.pin(mesh, {n - 1, n - 1, z}, 0.0);
  FlowProblem problem(mesh, std::move(perm), 1.0, std::move(bc));
  problem.add_source(mesh.index(0, 0, 0), rate);
  return problem;
}

TEST(Wells, SourceBookkeeping) {
  auto problem = rate_well_problem(4, 2.5);
  EXPECT_TRUE(problem.has_sources());
  EXPECT_DOUBLE_EQ(problem.sources()[0], 2.5);
  problem.add_source(0, 0.5); // accumulates
  EXPECT_DOUBLE_EQ(problem.sources()[0], 3.0);
  // A Dirichlet cell cannot be rate-controlled.
  EXPECT_THROW(problem.add_source(problem.mesh().index(3, 3, 0), 1.0), Error);
  EXPECT_THROW(problem.add_source(-1, 1.0), Error);
  const auto sys = problem.discretize<f32>();
  ASSERT_FALSE(sys.source.empty());
  EXPECT_FLOAT_EQ(sys.source[0], 3.0f);
}

TEST(Wells, ResidualIncludesSourceOnInteriorRowsOnly) {
  const auto problem = rate_well_problem(4, 1.5);
  const auto p = problem.initial_pressure();
  const auto with_sources = compute_residual(problem, p);
  const auto without =
      compute_residual(problem.mesh(), problem.transmissibility(),
                       problem.mobility(), problem.bc(), p);
  EXPECT_NEAR(with_sources[0] - without[0], 1.5, 1e-14);
  for (std::size_t i = 1; i < with_sources.size(); ++i)
    EXPECT_DOUBLE_EQ(with_sources[i], without[i]);
}

TEST(Wells, SteadySolutionBalancesInjectionAndProduction) {
  // At steady state, everything injected by the rate well leaves through
  // the pressure-pinned producer: sum of fluxes into the producer cells
  // equals the injection rate.
  const f64 rate = 3.0;
  const auto problem = rate_well_problem(6, rate);
  CgOptions options;
  options.tolerance = 1e-26;
  const auto result = solve_pressure_host(problem, options);
  ASSERT_TRUE(result.cg.converged);

  const auto& mesh = problem.mesh();
  f64 produced = 0;
  for (const auto& [idx, value] : problem.bc().sorted()) {
    const CellCoord c = mesh.coord(idx);
    for (Face face : kAllFaces) {
      // Flux INTO the producer cell from its neighbors.
      produced += interfacial_flux(mesh, problem.transmissibility(),
                                   problem.mobility(), result.pressure, c, face);
    }
  }
  EXPECT_NEAR(produced, rate, 1e-8);
}

TEST(Wells, InjectionRaisesPressureAboveProducer) {
  const auto problem = rate_well_problem(6, 2.0);
  CgOptions options;
  options.tolerance = 1e-24;
  const auto result = solve_pressure_host(problem, options);
  // The injector cell has the highest pressure in the field.
  const f64 p_injector = result.pressure[0];
  for (f64 p : result.pressure) EXPECT_LE(p, p_injector + 1e-12);
  EXPECT_GT(p_injector, 0.0);
}

TEST(Wells, SolutionIsLinearInRate) {
  // The system is linear: doubling the injection rate doubles the
  // (producer-referenced) pressure field.
  CgOptions options;
  options.tolerance = 1e-26;
  const auto one = solve_pressure_host(rate_well_problem(5, 1.0), options);
  const auto two = solve_pressure_host(rate_well_problem(5, 2.0), options);
  for (std::size_t i = 0; i < one.pressure.size(); ++i)
    EXPECT_NEAR(two.pressure[i], 2.0 * one.pressure[i], 1e-8);
}

TEST(Wells, DataflowDeviceMatchesHost) {
  const auto problem = rate_well_problem(5, 1.25);
  core::DataflowConfig config;
  config.tolerance = 1e-15f;
  const auto device = core::solve_dataflow(problem, config);
  ASSERT_TRUE(device.converged);
  const auto report = core::compare_with_host(problem, device, 1e-26);
  EXPECT_LT(report.rel_l2_error, 1e-4) << report.summary();
}

TEST(Wells, DataflowPcgHandlesSources) {
  const auto problem = rate_well_problem(5, 0.75);
  core::DataflowConfig config;
  config.tolerance = 1e-15f;
  config.jacobi_precondition = true;
  const auto device = core::solve_dataflow(problem, config);
  ASSERT_TRUE(device.converged);
  const auto report = core::compare_with_host(problem, device, 1e-26);
  EXPECT_LT(report.rel_l2_error, 1e-4) << report.summary();
}

TEST(Wells, GpuModelMatchesHost) {
  const auto problem = rate_well_problem(5, 1.75);
  gpu::GpuFvSolver solver(problem, GpuSpec::a100(), 1);
  gpu::GpuSolveConfig config;
  config.tolerance = 1e-13;
  const auto result = solver.solve(config);
  ASSERT_TRUE(result.converged);

  CgOptions host_options;
  host_options.tolerance = 1e-26;
  const auto host = solve_pressure_host(problem, host_options);
  for (std::size_t i = 0; i < host.pressure.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(result.pressure[i]), host.pressure[i], 5e-4);
}

TEST(Wells, TransientApproachesSteadyStateWithSources) {
  const auto problem = rate_well_problem(5, 1.0);
  TransientOptions options;
  options.dt = 10.0;
  options.steps = 200;
  options.cg.tolerance = 1e-26;
  const auto transient = solve_transient_host(problem, options);
  ASSERT_TRUE(transient.all_converged);

  CgOptions steady_options;
  steady_options.tolerance = 1e-26;
  const auto steady = solve_pressure_host(problem, steady_options);
  for (std::size_t i = 0; i < steady.pressure.size(); ++i)
    EXPECT_NEAR(transient.pressure[i], steady.pressure[i], 1e-3);
}

TEST(Wells, MultipleSourcesSuperpose) {
  // Two unit injectors == the sum of the fields of each injector alone.
  auto make = [](bool first, bool second) {
    CartesianMesh3D mesh(6, 6, 1);
    DirichletSet bc;
    bc.pin(mesh, {5, 5, 0}, 0.0);
    FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, std::move(bc));
    if (first) problem.add_source(mesh.index(0, 0, 0), 1.0);
    if (second) problem.add_source(mesh.index(0, 5, 0), 1.0);
    return problem;
  };
  CgOptions options;
  options.tolerance = 1e-26;
  const auto a = solve_pressure_host(make(true, false), options);
  const auto b = solve_pressure_host(make(false, true), options);
  const auto both = solve_pressure_host(make(true, true), options);
  for (std::size_t i = 0; i < both.pressure.size(); ++i)
    EXPECT_NEAR(both.pressure[i], a.pressure[i] + b.pressure[i], 1e-8);
}

TEST(Wells, ProductionRateWellDrawsPressureDown) {
  // Negative rate = production: pressure dips below the far-field pin.
  CartesianMesh3D mesh(6, 6, 1);
  DirichletSet bc;
  bc.pin(mesh, {0, 0, 0}, 1.0);
  FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, std::move(bc));
  problem.add_source(mesh.index(5, 5, 0), -0.8);
  CgOptions options;
  options.tolerance = 1e-26;
  const auto result = solve_pressure_host(problem, options);
  ASSERT_TRUE(result.cg.converged);
  EXPECT_LT(result.pressure[static_cast<std::size_t>(mesh.index(5, 5, 0))], 1.0);
}

} // namespace
} // namespace fvdf
