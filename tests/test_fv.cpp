// FV layer tests: residual (Eq. 3) and flux (Eq. 4) semantics, matrix-free
// operator (Eq. 6) correctness and SPD structure, agreement between the
// matrix-free and assembled-CSR operators, threaded-apply equivalence,
// and DiscreteSystem lowering.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fv/assembled.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "fv/residual.hpp"
#include "solver/dense.hpp"

namespace fvdf {
namespace {

std::vector<f64> random_vector(std::size_t n, Rng& rng) {
  std::vector<f64> v(n);
  for (auto& value : v) value = rng.uniform(-1.0, 1.0);
  return v;
}

// ---------- Residual / flux (Eq. 3 & 4) ----------

TEST(Residual, UniformPressureHasZeroInteriorResidual) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 3);
  // Constant field: all fluxes vanish; Dirichlet rows read p - p^D.
  std::vector<f64> p(static_cast<std::size_t>(problem.mesh().cell_count()), 7.0);
  const auto r = compute_residual(problem.mesh(), problem.transmissibility(),
                                  problem.mobility(), problem.bc(), p);
  for (CellIndex k = 0; k < problem.mesh().cell_count(); ++k) {
    if (problem.bc().contains(k)) {
      EXPECT_DOUBLE_EQ(r[static_cast<std::size_t>(k)], 7.0 - problem.bc().value(k));
    } else {
      EXPECT_NEAR(r[static_cast<std::size_t>(k)], 0.0, 1e-12);
    }
  }
}

TEST(Residual, InitialGuessSatisfyingBcHasZeroDirichletResidual) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 3, 11);
  const auto p = problem.initial_pressure(0.3);
  const auto r = compute_residual(problem.mesh(), problem.transmissibility(),
                                  problem.mobility(), problem.bc(), p);
  for (const auto& [idx, value] : problem.bc().sorted())
    EXPECT_DOUBLE_EQ(r[static_cast<std::size_t>(idx)], 0.0);
}

TEST(Flux, IsAntisymmetricAcrossInterface) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 4, 3);
  Rng rng(1);
  const auto p = random_vector(static_cast<std::size_t>(problem.mesh().cell_count()), rng);
  const CellCoord c{1, 2, 1};
  for (Face face : kAllFaces) {
    const auto nb = problem.mesh().neighbor(c, face);
    ASSERT_TRUE(nb);
    const f64 f_kl = interfacial_flux(problem.mesh(), problem.transmissibility(),
                                      problem.mobility(), p, c, face);
    const f64 f_lk = interfacial_flux(problem.mesh(), problem.transmissibility(),
                                      problem.mobility(), p, *nb, opposite(face));
    EXPECT_NEAR(f_kl, -f_lk, 1e-12); // mass conservation at the interface
  }
}

TEST(Flux, IsZeroAtDomainBoundary) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 3);
  Rng rng(2);
  const auto p = random_vector(27, rng);
  EXPECT_DOUBLE_EQ(interfacial_flux(problem.mesh(), problem.transmissibility(),
                                    problem.mobility(), p, {0, 1, 1}, Face::West),
                   0.0);
}

TEST(Flux, ScalesWithMobility) {
  // Halving viscosity doubles mobility and hence the flux.
  const CartesianMesh3D mesh(2, 1, 1);
  auto perm = perm::homogeneous(mesh, 1.0);
  DirichletSet bc;
  const FlowProblem thin(mesh, perm, /*viscosity=*/1.0, bc);
  const FlowProblem thick(mesh, perm, /*viscosity=*/2.0, bc);
  const std::vector<f64> p = {1.0, 0.0};
  const f64 f_thin = interfacial_flux(mesh, thin.transmissibility(), thin.mobility(),
                                      p, {0, 0, 0}, Face::East);
  const f64 f_thick = interfacial_flux(mesh, thick.transmissibility(),
                                       thick.mobility(), p, {0, 0, 0}, Face::East);
  EXPECT_NEAR(f_thin, 2.0 * f_thick, 1e-14);
}

// ---------- Matrix-free operator (Eq. 6) ----------

TEST(MatrixFreeOperator, DirichletRowsAreIdentity) {
  const auto problem = FlowProblem::quarter_five_spot(3, 3, 2, 5);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  Rng rng(4);
  const auto x = random_vector(static_cast<std::size_t>(sys.cell_count()), rng);
  std::vector<f64> y(x.size());
  op.apply(x.data(), y.data());
  for (const auto& [idx, value] : problem.bc().sorted())
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(idx)], x[static_cast<std::size_t>(idx)]);
}

TEST(MatrixFreeOperator, AnnihilatesConstantsWithoutBc) {
  // With no Dirichlet rows the operator is a (negative) graph Laplacian:
  // constants are in its null space.
  const CartesianMesh3D mesh(4, 3, 3);
  const FlowProblem problem(mesh, perm::homogeneous(mesh, 2.0), 1.0, DirichletSet{});
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  std::vector<f64> ones(static_cast<std::size_t>(sys.cell_count()), 1.0);
  std::vector<f64> y(ones.size());
  op.apply(ones.data(), y.data());
  for (f64 v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(MatrixFreeOperator, InteriorBlockIsSymmetric) {
  const auto problem = FlowProblem::quarter_five_spot(3, 3, 3, 7);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(8);
  // Restrict probes to the subspace with zero Dirichlet entries — the
  // subspace CG actually operates in (see DESIGN.md).
  auto probe = [&] {
    auto v = random_vector(n, rng);
    for (const auto& [idx, value] : problem.bc().sorted())
      v[static_cast<std::size_t>(idx)] = 0.0;
    return v;
  };
  for (int trial = 0; trial < 5; ++trial) {
    const auto u = probe();
    const auto v = probe();
    std::vector<f64> au(n), av(n);
    op.apply(u.data(), au.data());
    op.apply(v.data(), av.data());
    f64 v_au = 0, u_av = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v_au += v[i] * au[i];
      u_av += u[i] * av[i];
    }
    EXPECT_NEAR(v_au, u_av, 1e-10 * std::max(std::fabs(v_au), 1.0));
  }
}

TEST(MatrixFreeOperator, IsPositiveDefiniteOnConstrainedSubspace) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 2, 9);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    auto x = random_vector(n, rng);
    for (const auto& [idx, value] : problem.bc().sorted())
      x[static_cast<std::size_t>(idx)] = 0.0;
    std::vector<f64> y(n);
    op.apply(x.data(), y.data());
    f64 xy = 0;
    for (std::size_t i = 0; i < n; ++i) xy += x[i] * y[i];
    EXPECT_GT(xy, 0.0);
  }
}

TEST(MatrixFreeOperator, ThreadedApplyMatchesSerial) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 4, 21);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(12);
  const auto x = random_vector(n, rng);
  std::vector<f64> serial(n), threaded(n);
  op.apply(x.data(), serial.data());
  ThreadPool pool(3);
  op.apply_threaded(x.data(), threaded.data(), pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(serial[i], threaded[i]);
}

TEST(MatrixFreeOperator, FlopCountMatchesPaperAccounting) {
  // 3x3x3 without BCs: every cell-face pair counts 14 FLOPs.
  const CartesianMesh3D mesh(3, 3, 3);
  const FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, DirichletSet{});
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  // Faces incident per axis: 2*(nx-1)*ny*nz etc. (each interior face
  // counted once per adjacent cell).
  const u64 face_incidences = 2 * (2 * 3 * 3) * 3;
  EXPECT_EQ(op.flop_count(), 14 * face_incidences);
}

// ---------- Assembled CSR baseline ----------

TEST(AssembledOperator, MatchesMatrixFreeOnRandomVectors) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 3, 31);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> mf(sys);
  const AssembledOperator<f64> asm_op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    const auto x = random_vector(n, rng);
    std::vector<f64> y1(n), y2(n);
    mf.apply(x.data(), y1.data());
    asm_op.apply(x.data(), y2.data());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  }
}

TEST(AssembledOperator, HasSevenPointStructure) {
  const CartesianMesh3D mesh(3, 3, 3);
  const FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, DirichletSet{});
  const auto sys = problem.discretize<f64>();
  const AssembledOperator<f64> op(sys);
  // Center cell has a full 7-point row.
  const CellIndex center = mesh.index(1, 1, 1);
  const auto row_len = op.row_ptr()[static_cast<std::size_t>(center) + 1] -
                       op.row_ptr()[static_cast<std::size_t>(center)];
  EXPECT_EQ(row_len, 7);
  // Corner cell: diagonal + 3 neighbors.
  const auto corner_len = op.row_ptr()[1] - op.row_ptr()[0];
  EXPECT_EQ(corner_len, 4);
}

TEST(AssembledOperator, RowSumsVanishWithoutBc) {
  // Each interior row of the Laplacian-like operator sums to zero.
  const CartesianMesh3D mesh(4, 3, 2);
  Rng rng(15);
  auto field = perm::lognormal(mesh, rng, 0.0, 1.0);
  const FlowProblem problem(mesh, std::move(field), 1.0, DirichletSet{});
  const auto sys = problem.discretize<f64>();
  const AssembledOperator<f64> op(sys);
  for (CellIndex row = 0; row < op.size(); ++row) {
    f64 sum = 0;
    for (CellIndex e = op.row_ptr()[static_cast<std::size_t>(row)];
         e < op.row_ptr()[static_cast<std::size_t>(row) + 1]; ++e)
      sum += op.values()[static_cast<std::size_t>(e)];
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(AssembledOperator, MatrixBytesExceedMatrixFreeData) {
  // The motivation for matrix-free (Sec. II-A): CSR storage dwarfs the
  // problem data itself.
  const auto problem = FlowProblem::quarter_five_spot(10, 10, 10, 1);
  const auto sys = problem.discretize<f32>();
  const AssembledOperator<f32> op(sys);
  EXPECT_GT(op.matrix_bytes(), sys.data_bytes());
}

TEST(AssembledOperator, DenseProbeIsSymmetricOnConstrainedSubspace) {
  const auto problem = FlowProblem::quarter_five_spot(3, 3, 2, 2);
  const auto sys = problem.discretize<f64>();
  const AssembledOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  const DenseMatrix dense = DenseMatrix::from_operator(
      [&](const f64* x, f64* y) { op.apply(x, y); }, n);
  // Zero out Dirichlet rows/columns, then check symmetry of the rest.
  f64 defect = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      if (problem.bc().contains(static_cast<CellIndex>(i)) ||
          problem.bc().contains(static_cast<CellIndex>(j)))
        continue;
      defect = std::max(defect, std::fabs(dense.at(i, j) - dense.at(j, i)));
    }
  EXPECT_LT(defect, 1e-12);
}

// ---------- Problem / DiscreteSystem ----------

TEST(Problem, DiscretizeLowersAllArrays) {
  const auto problem = FlowProblem::quarter_five_spot(4, 3, 2, 6);
  const auto sys = problem.discretize<f32>();
  EXPECT_EQ(sys.nx, 4);
  EXPECT_EQ(sys.ny, 3);
  EXPECT_EQ(sys.nz, 2);
  EXPECT_EQ(sys.lambda.size(), 24u);
  EXPECT_EQ(sys.tx.size(), 3u * 3 * 2);
  EXPECT_EQ(sys.ty.size(), 4u * 2 * 2);
  EXPECT_EQ(sys.tz.size(), 4u * 3 * 1);
  EXPECT_EQ(sys.dirichlet.size(), 24u);
  u32 pinned = 0;
  for (u8 m : sys.dirichlet) pinned += m;
  EXPECT_EQ(pinned, 4u); // two corner wells x nz=2
}

TEST(Problem, InitialPressureHonorsBcAndGuess) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 2);
  const auto p = problem.initial_pressure(0.25);
  for (CellIndex k = 0; k < problem.mesh().cell_count(); ++k) {
    if (problem.bc().contains(k)) {
      EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(k)], problem.bc().value(k));
    } else {
      EXPECT_DOUBLE_EQ(p[static_cast<std::size_t>(k)], 0.25);
    }
  }
}

TEST(Problem, F32LoweringIsCloseToF64) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 3, 99);
  const auto sys64 = problem.discretize<f64>();
  const auto sys32 = problem.discretize<f32>();
  for (std::size_t i = 0; i < sys64.tx.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(sys32.tx[i]), sys64.tx[i],
                1e-6 * std::max(1.0, std::fabs(sys64.tx[i])));
}

} // namespace
} // namespace fvdf
