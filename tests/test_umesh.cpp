// Unstructured-mesh tests (the paper's future-work direction): builders,
// face-list operator equivalence against the structured solver, active-cell
// masking, the radial sector's geometry, and the fabric-mapping planner.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"
#include "umesh/fabric_map.hpp"
#include "umesh/mesh.hpp"
#include "umesh/usolve.hpp"

namespace fvdf::umesh {
namespace {

// ---------- builders & invariants ----------

TEST(UMesh, FromCartesianHasExpectedCounts) {
  const CartesianMesh3D mesh(4, 3, 2);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  EXPECT_EQ(umesh.cell_count(), 24);
  EXPECT_EQ(umesh.faces().size(),
            static_cast<std::size_t>(mesh.x_face_count() + mesh.y_face_count() +
                                     mesh.z_face_count()));
  // 4x3x2 has no fully interior cell: the max degree is 5 (interior in x
  // and y, boundary in z). A 3x3x3 box has a true 6-neighbor center.
  EXPECT_EQ(umesh.max_degree(), 5u);
  EXPECT_TRUE(umesh.connected());
  EXPECT_TRUE(umesh.has_centroids());
  const CartesianMesh3D cube(3, 3, 3);
  const auto cube_field = perm::homogeneous(cube, 1.0);
  EXPECT_EQ(UnstructuredMesh::from_cartesian(cube, cube_field).max_degree(), 6u);
}

TEST(UMesh, ValidatesFaceEndpoints) {
  std::vector<UFace> bad = {{0, 5, 1.0}};
  EXPECT_THROW(UnstructuredMesh(2, bad, {1.0, 1.0}), Error);
  std::vector<UFace> self_loop = {{1, 1, 1.0}};
  EXPECT_THROW(UnstructuredMesh(2, self_loop, {1.0, 1.0}), Error);
  EXPECT_THROW(UnstructuredMesh(2, {}, {1.0, -1.0}), Error); // bad volume
}

TEST(UMesh, ActiveCellMaskRemovesCellsAndFaces) {
  const CartesianMesh3D mesh(3, 3, 1);
  const auto field = perm::homogeneous(mesh, 1.0);
  CellField<u8> active(mesh, 1);
  active.at(1, 1, 0) = 0; // punch out the center: a ring domain
  std::vector<CellIndex> to_cartesian;
  const auto ring =
      UnstructuredMesh::from_active_cells(mesh, field, active, &to_cartesian);
  EXPECT_EQ(ring.cell_count(), 8);
  EXPECT_EQ(to_cartesian.size(), 8u);
  // Ring: 8 faces (each edge cell connects to its two ring neighbors).
  EXPECT_EQ(ring.faces().size(), 8u);
  EXPECT_TRUE(ring.connected());
  // No face may reference the removed center.
  for (CellIndex orig : to_cartesian) EXPECT_NE(orig, mesh.index(1, 1, 0));
}

TEST(UMesh, DisconnectedMaskIsDetected) {
  const CartesianMesh3D mesh(3, 1, 1);
  const auto field = perm::homogeneous(mesh, 1.0);
  CellField<u8> active(mesh, 1);
  active.at(1, 0, 0) = 0; // two isolated cells
  const auto split = UnstructuredMesh::from_active_cells(mesh, field, active, nullptr);
  EXPECT_EQ(split.cell_count(), 2);
  EXPECT_FALSE(split.connected());
}

TEST(UMesh, RadialSectorGeometry) {
  const auto ring = UnstructuredMesh::radial_sector(/*nr=*/4, /*ntheta=*/8,
                                                    /*nz=*/2, 1.0, 3.0, 1.0, 1.0);
  EXPECT_EQ(ring.cell_count(), 64);
  EXPECT_TRUE(ring.connected());
  // Total volume = annulus area * height * nz... = pi(9-1)*1*2 layers.
  f64 total = 0;
  for (f64 v : ring.volumes()) total += v;
  EXPECT_NEAR(total, M_PI * 8.0 * 2.0, 1e-9);
  // Outer-shell cells are bigger than inner-shell cells.
  EXPECT_GT(ring.volumes()[3], ring.volumes()[0]);
}

// ---------- operator / solve equivalence ----------

TEST(USolve, MatchesStructuredSolverOnCartesianMesh) {
  const auto structured = FlowProblem::quarter_five_spot(5, 4, 3, 42);
  CgOptions options;
  options.tolerance = 1e-24;
  const auto gold = solve_pressure_host(structured, options);

  // Re-express the same problem as a face list.
  const auto umesh_geom =
      UnstructuredMesh::from_cartesian(structured.mesh(), structured.permeability());
  std::vector<f64> mobility(static_cast<std::size_t>(umesh_geom.cell_count()),
                            structured.mobility().data()[0]);
  DirichletSet bc;
  for (const auto& [idx, value] : structured.bc().sorted()) bc.pin(idx, value);
  const UFlowProblem uproblem(umesh_geom, std::move(mobility), std::move(bc));
  const auto result = solve_pressure_unstructured(uproblem, options);

  ASSERT_TRUE(result.cg.converged);
  for (std::size_t i = 0; i < gold.pressure.size(); ++i)
    EXPECT_NEAR(result.pressure[i], gold.pressure[i], 1e-8);
}

TEST(USolve, OperatorMatchesStructuredApply) {
  const auto structured = FlowProblem::quarter_five_spot(4, 4, 2, 9);
  const auto sys = structured.discretize<f64>();
  const MatrixFreeOperator<f64> structured_op(sys);

  const auto umesh_geom =
      UnstructuredMesh::from_cartesian(structured.mesh(), structured.permeability());
  std::vector<f64> mobility(static_cast<std::size_t>(umesh_geom.cell_count()),
                            structured.mobility().data()[0]);
  DirichletSet bc;
  for (const auto& [idx, value] : structured.bc().sorted()) bc.pin(idx, value);
  const UFlowProblem uproblem(umesh_geom, std::move(mobility), std::move(bc));
  const UMatrixFreeOperator uop(uproblem);

  Rng rng(4);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> x(n), y1(n), y2(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  structured_op.apply(x.data(), y1.data());
  uop.apply(x.data(), y2.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(USolve, MaskedDomainObeysMaximumPrinciple) {
  // L-shaped domain: mask out a quadrant; pressures stay within well range.
  const CartesianMesh3D mesh(8, 8, 1);
  Rng rng(3);
  const auto field = perm::lognormal(mesh, rng, 0.0, 1.0);
  CellField<u8> active(mesh, 1);
  for (i64 y = 4; y < 8; ++y)
    for (i64 x = 4; x < 8; ++x) active.at(x, y, 0) = 0;
  std::vector<CellIndex> to_cartesian;
  const auto lshape =
      UnstructuredMesh::from_active_cells(mesh, field, active, &to_cartesian);
  ASSERT_TRUE(lshape.connected());

  // Wells at compact indices of (0,0) and (7,3).
  DirichletSet bc;
  for (std::size_t u = 0; u < to_cartesian.size(); ++u) {
    if (to_cartesian[u] == mesh.index(0, 0, 0)) bc.pin(static_cast<CellIndex>(u), 1.0);
    if (to_cartesian[u] == mesh.index(7, 3, 0)) bc.pin(static_cast<CellIndex>(u), 0.0);
  }
  ASSERT_EQ(bc.size(), 2u);
  std::vector<f64> mobility(static_cast<std::size_t>(lshape.cell_count()), 1.0);
  const UFlowProblem problem(lshape, std::move(mobility), std::move(bc));
  CgOptions options;
  options.tolerance = 1e-24;
  const auto result = solve_pressure_unstructured(problem, options);
  ASSERT_TRUE(result.cg.converged);
  EXPECT_LT(result.final_residual_norm, 1e-9);
  for (f64 p : result.pressure) {
    EXPECT_GE(p, -1e-9);
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

TEST(USolve, RadialSteadyStateMatchesLogSolution) {
  // Radial flow between two pressure rings: p(r) ~ log(r), the classic
  // well-test solution. Pin the inner and outer shells and compare shapes.
  const i64 nr = 24, ntheta = 12;
  const f64 r0 = 1.0, r1 = 10.0;
  const auto ring = UnstructuredMesh::radial_sector(nr, ntheta, 1, r0, r1, 1.0, 1.0);
  DirichletSet bc;
  for (i64 it = 0; it < ntheta; ++it) {
    bc.pin(it * nr + 0, 1.0);      // inner shell
    bc.pin(it * nr + nr - 1, 0.0); // outer shell
  }
  std::vector<f64> mobility(static_cast<std::size_t>(ring.cell_count()), 1.0);
  const UFlowProblem problem(ring, std::move(mobility), std::move(bc));
  CgOptions options;
  options.tolerance = 1e-26;
  const auto result = solve_pressure_unstructured(problem, options);
  ASSERT_TRUE(result.cg.converged);

  const f64 dr = (r1 - r0) / static_cast<f64>(nr);
  for (i64 ir = 1; ir < nr - 1; ++ir) {
    const f64 r_mid = r0 + (static_cast<f64>(ir) + 0.5) * dr;
    const f64 r_in = r0 + 0.5 * dr, r_out = r1 - 0.5 * dr;
    const f64 analytic =
        1.0 - std::log(r_mid / r_in) / std::log(r_out / r_in);
    EXPECT_NEAR(result.pressure[static_cast<std::size_t>(ir)], analytic, 0.02)
        << "shell " << ir;
  }
}

TEST(USolve, JacobiAndPlainAgree) {
  const auto ring = UnstructuredMesh::radial_sector(8, 8, 2, 1.0, 4.0, 1.0, 1.0);
  DirichletSet bc;
  bc.pin(0, 1.0);
  bc.pin(ring.cell_count() - 1, 0.0);
  std::vector<f64> mobility(static_cast<std::size_t>(ring.cell_count()), 1.0);
  const UFlowProblem problem(ring, std::move(mobility), std::move(bc));
  CgOptions options;
  options.tolerance = 1e-24;
  const auto plain = solve_pressure_unstructured(problem, options, /*jacobi=*/false);
  const auto pcg = solve_pressure_unstructured(problem, options, /*jacobi=*/true);
  for (std::size_t i = 0; i < plain.pressure.size(); ++i)
    EXPECT_NEAR(plain.pressure[i], pcg.pressure[i], 1e-8);
}

// ---------- fabric mapping ----------

TEST(FabricMap, Morton2InterleavesBits) {
  EXPECT_EQ(morton2(0, 0), 0u);
  EXPECT_EQ(morton2(1, 0), 1u);
  EXPECT_EQ(morton2(0, 1), 2u);
  EXPECT_EQ(morton2(3, 5), 0b100111u); // x=11, y=101 -> 10 01 11
}

TEST(FabricMap, EveryCellAssignedExactlyOnceAndBalanced) {
  const CartesianMesh3D mesh(10, 10, 4);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  MappingOptions options;
  options.fabric_width = 5;
  options.fabric_height = 4;
  for (MappingStrategy strategy :
       {MappingStrategy::IndexBlocks, MappingStrategy::MortonSfc,
        MappingStrategy::Random}) {
    const Mapping mapping = map_cells(umesh, strategy, options);
    const MappingReport report = evaluate_mapping(umesh, mapping, options);
    EXPECT_EQ(report.cells, 400u);
    EXPECT_EQ(report.min_cells_per_pe, 20u) << to_string(strategy);
    EXPECT_EQ(report.max_cells_per_pe, 20u) << to_string(strategy);
    EXPECT_NEAR(report.load_imbalance, 1.0, 1e-12);
  }
}

TEST(FabricMap, MortonBeatsRandomOnLocality) {
  const CartesianMesh3D mesh(16, 16, 4);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  MappingOptions options;
  options.fabric_width = 4;
  options.fabric_height = 4;
  const auto morton = evaluate_mapping(
      umesh, map_cells(umesh, MappingStrategy::MortonSfc, options), options);
  const auto random = evaluate_mapping(
      umesh, map_cells(umesh, MappingStrategy::Random, options), options);
  EXPECT_LT(morton.cut_faces, random.cut_faces / 2);
  EXPECT_LT(morton.total_hop_weight, random.total_hop_weight / 2);
  EXPECT_LE(morton.max_remote_neighbors, random.max_remote_neighbors);
}

TEST(FabricMap, MortonGroupsColumnsLikeThePaperMapping) {
  // On an extruded (x,y,z) mesh, Morton over (x,y) centroids keeps whole
  // z-columns on one PE — the structured mapping of Sec. III-A emerges.
  const CartesianMesh3D mesh(8, 8, 8);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  MappingOptions options;
  options.fabric_width = 8;
  options.fabric_height = 8;
  const Mapping mapping = map_cells(umesh, MappingStrategy::MortonSfc, options);
  // Every cell of a column shares its PE with the column's z=0 cell.
  for (i64 y = 0; y < 8; ++y)
    for (i64 x = 0; x < 8; ++x) {
      const i32 pe0 =
          mapping.pe_of_cell[static_cast<std::size_t>(mesh.index(x, y, 0))];
      for (i64 z = 1; z < 8; ++z)
        EXPECT_EQ(mapping.pe_of_cell[static_cast<std::size_t>(mesh.index(x, y, z))],
                  pe0);
    }
  const auto report = evaluate_mapping(umesh, mapping, options);
  // Column mapping: only lateral faces are cut, all between adjacent PEs.
  EXPECT_EQ(report.max_remote_neighbors, 4u);
}

TEST(FabricMap, MemoryBudgetIsChecked) {
  const CartesianMesh3D mesh(8, 8, 16);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  MappingOptions options;
  options.fabric_width = 2;
  options.fabric_height = 2;
  options.bytes_per_cell = 53;
  options.pe_memory_budget_bytes = 4 * 1024; // too small for 256 cells/PE
  const auto tight = evaluate_mapping(
      umesh, map_cells(umesh, MappingStrategy::IndexBlocks, options), options);
  EXPECT_FALSE(tight.fits_memory);
  options.pe_memory_budget_bytes = 46 * 1024;
  const auto roomy = evaluate_mapping(
      umesh, map_cells(umesh, MappingStrategy::IndexBlocks, options), options);
  EXPECT_TRUE(roomy.fits_memory);
}

TEST(FabricMap, SinglePeFabricHasNoCuts) {
  const CartesianMesh3D mesh(4, 4, 2);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh = UnstructuredMesh::from_cartesian(mesh, field);
  MappingOptions options;
  options.fabric_width = 1;
  options.fabric_height = 1;
  const auto report = evaluate_mapping(
      umesh, map_cells(umesh, MappingStrategy::Random, options), options);
  EXPECT_EQ(report.cut_faces, 0u);
  EXPECT_EQ(report.total_hop_weight, 0u);
}

} // namespace
} // namespace fvdf::umesh
