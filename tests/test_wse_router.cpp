// Router tests: switch positions, ring mode, control-advance semantics,
// misroute/backpressure predicates — Listing 1's machinery in isolation.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "wse/router.hpp"

namespace fvdf::wse {
namespace {

ColorConfig two_position_ring() {
  // Listing 1 verbatim: pos0 = {rx RAMP, tx EAST}, pos1 = {rx WEST, tx RAMP}.
  ColorConfig config;
  config.positions = {
      SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
      SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)},
  };
  config.ring_mode = true;
  return config;
}

TEST(DirMaskTest, OfAndContains) {
  const DirMask mask = DirMask::of(Dir::Ramp, Dir::East);
  EXPECT_TRUE(mask.contains(Dir::Ramp));
  EXPECT_TRUE(mask.contains(Dir::East));
  EXPECT_FALSE(mask.contains(Dir::West));
  EXPECT_FALSE(DirMask{}.contains(Dir::Ramp));
  EXPECT_TRUE(DirMask{}.empty());
}

TEST(Geometry, ArrivalSideIsOpposite) {
  EXPECT_EQ(arrival_side(Dir::East), Dir::West);
  EXPECT_EQ(arrival_side(Dir::West), Dir::East);
  EXPECT_EQ(arrival_side(Dir::North), Dir::South);
  EXPECT_EQ(arrival_side(Dir::South), Dir::North);
  EXPECT_THROW(arrival_side(Dir::Ramp), Error);
}

TEST(Geometry, NeighborRespectsPaperOrientation) {
  // North is y-1, South is y+1 (Sec. III-B).
  const auto n = neighbor({2, 2}, Dir::North, 5, 5);
  ASSERT_TRUE(n);
  EXPECT_EQ(n->y, 1);
  const auto s = neighbor({2, 2}, Dir::South, 5, 5);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->y, 3);
  EXPECT_FALSE(neighbor({0, 0}, Dir::West, 5, 5));
  EXPECT_FALSE(neighbor({4, 4}, Dir::East, 5, 5));
  EXPECT_FALSE(neighbor({0, 0}, Dir::North, 5, 5));
  EXPECT_FALSE(neighbor({4, 4}, Dir::South, 5, 5));
}

TEST(RouterTest, RoutesPerCurrentPosition) {
  Router router;
  router.configure(0, two_position_ring());
  EXPECT_EQ(router.position(0), 0u);
  const DirMask tx = router.route(0, Dir::Ramp);
  EXPECT_TRUE(tx.contains(Dir::East));
  EXPECT_FALSE(tx.contains(Dir::Ramp));
}

TEST(RouterTest, AdvanceMovesToNextPosition) {
  Router router;
  router.configure(0, two_position_ring());
  router.advance(color_bit(0));
  EXPECT_EQ(router.position(0), 1u);
  const DirMask tx = router.route(0, Dir::West);
  EXPECT_TRUE(tx.contains(Dir::Ramp));
}

TEST(RouterTest, RingModeWrapsAround) {
  Router router;
  router.configure(0, two_position_ring());
  router.advance(color_bit(0));
  router.advance(color_bit(0));
  EXPECT_EQ(router.position(0), 0u); // back to the sending position
}

TEST(RouterTest, WithoutRingModeSaturates) {
  Router router;
  ColorConfig config = two_position_ring();
  config.ring_mode = false;
  router.configure(0, config);
  router.advance(color_bit(0));
  router.advance(color_bit(0));
  router.advance(color_bit(0));
  EXPECT_EQ(router.position(0), 1u);
}

TEST(RouterTest, AdvanceMaskSelectsColors) {
  Router router;
  router.configure(0, two_position_ring());
  router.configure(1, two_position_ring());
  router.advance(color_bit(1));
  EXPECT_EQ(router.position(0), 0u);
  EXPECT_EQ(router.position(1), 1u);
}

TEST(RouterTest, AdvanceOfUnconfiguredColorIsNoop) {
  Router router;
  router.configure(0, two_position_ring());
  EXPECT_NO_THROW(router.advance(color_bit(5)));
}

TEST(RouterTest, AcceptsReflectsCurrentRxSet) {
  Router router;
  router.configure(0, two_position_ring());
  EXPECT_TRUE(router.accepts(0, Dir::Ramp));
  EXPECT_FALSE(router.accepts(0, Dir::West)); // backpressure case
  router.advance(color_bit(0));
  EXPECT_TRUE(router.accepts(0, Dir::West));
  EXPECT_FALSE(router.accepts(0, Dir::Ramp));
}

TEST(RouterTest, UnconfiguredColorIsAnError) {
  Router router;
  EXPECT_FALSE(router.is_configured(3));
  EXPECT_THROW(router.route(3, Dir::Ramp), Error);
  EXPECT_THROW(router.accepts(3, Dir::Ramp), Error);
  EXPECT_THROW(router.position(3), Error);
}

TEST(RouterTest, MisrouteThrows) {
  Router router;
  router.configure(0, two_position_ring());
  EXPECT_THROW(router.route(0, Dir::North), Error);
}

TEST(RouterTest, BroadcastFanoutIsExpressible) {
  // A bcast tap: rx South -> tx {Ramp, North} (the all-reduce's phase 3).
  Router router;
  ColorConfig config;
  config.positions = {
      SwitchPosition{DirMask::of(Dir::South), DirMask::of(Dir::Ramp, Dir::North)}};
  router.configure(2, config);
  const DirMask tx = router.route(2, Dir::South);
  EXPECT_TRUE(tx.contains(Dir::Ramp));
  EXPECT_TRUE(tx.contains(Dir::North));
}

TEST(RouterTest, ConfigValidation) {
  Router router;
  ColorConfig empty;
  EXPECT_THROW(router.configure(0, empty), Error);
  ColorConfig bad;
  bad.positions = {SwitchPosition{DirMask{}, DirMask::of(Dir::East)}};
  EXPECT_THROW(router.configure(0, bad), Error);
}

TEST(RouterTest, ReconfigureResetsPosition) {
  Router router;
  router.configure(0, two_position_ring());
  router.advance(color_bit(0));
  router.configure(0, two_position_ring());
  EXPECT_EQ(router.position(0), 0u);
}

TEST(ColorTest, RoutableAndLocalRanges) {
  EXPECT_TRUE(is_routable(0));
  EXPECT_TRUE(is_routable(23));
  EXPECT_FALSE(is_routable(24));
  EXPECT_TRUE(is_local_only(24));
  EXPECT_FALSE(is_local_only(23));
  EXPECT_FALSE(is_valid(kNumColors));
  EXPECT_FALSE(is_valid(kInvalidColor));
  EXPECT_THROW(color_bit(24), Error);
}

} // namespace
} // namespace fvdf::wse
