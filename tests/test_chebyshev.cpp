// Chebyshev iteration tests: Lanczos spectral-bound estimation, host
// solver correctness vs CG, divergence guard, and the device program —
// including the headline property: far fewer all-reduce messages than CG
// for the same solve.

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/diagonal.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/chebyshev.hpp"
#include "solver/dense.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf {
namespace {

// ---------- spectral bounds ----------

TEST(SpectralBounds, BracketKnownDiagonalSpectrum) {
  // Diagonal operator with known spectrum {1, 2, ..., 16}.
  const std::size_t n = 16;
  const auto apply = [](const f64* in, f64* out) {
    for (std::size_t i = 0; i < 16; ++i) out[i] = static_cast<f64>(i + 1) * in[i];
  };
  const auto bounds = estimate_spectral_bounds<f64>(apply, n, /*steps=*/16);
  EXPECT_LE(bounds.lambda_min, 1.0);  // widened below the true minimum
  EXPECT_GE(bounds.lambda_max, 16.0); // widened above the true maximum
  EXPECT_LE(bounds.lambda_max, 20.0); // but not absurdly
  EXPECT_GT(bounds.lambda_min, 0.0);
}

TEST(SpectralBounds, BracketFvOperatorSpectrum) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 3, 5);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  const auto bounds = estimate_spectral_bounds<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, n);
  EXPECT_GT(bounds.lambda_min, 0.0);
  EXPECT_GT(bounds.lambda_max, bounds.lambda_min);
  // lambda_max can never exceed 2*max diagonal (Gershgorin, SPD stencil).
  f64 max_diag = 0;
  for (f64 d : jacobian_diagonal(sys)) max_diag = std::max(max_diag, d);
  EXPECT_LE(bounds.lambda_max, 2.2 * max_diag);
}

// ---------- host Chebyshev ----------

TEST(Chebyshev, SolvesDiagonalSystemExactly) {
  const std::size_t n = 8;
  const auto apply = [](const f64* in, f64* out) {
    for (std::size_t i = 0; i < 8; ++i) out[i] = static_cast<f64>(i + 1) * in[i];
  };
  std::vector<f64> b(n, 1.0), y(n);
  ChebyshevOptions options;
  options.tolerance = 1e-24;
  options.check_every = 4;
  const auto result =
      chebyshev_solve<f64>(apply, b.data(), y.data(), n, {1.0, 8.0}, options);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[i], 1.0 / static_cast<f64>(i + 1), 1e-10);
}

TEST(Chebyshev, MatchesCgSolutionOnFvProblem) {
  const auto problem = FlowProblem::quarter_five_spot(7, 6, 3, 21);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  const auto apply = [&](const f64* in, f64* out) { op.apply(in, out); };
  const auto bounds = estimate_spectral_bounds<f64>(apply, n);

  std::vector<f64> b(n, 0.0);
  b[static_cast<std::size_t>(problem.mesh().index(3, 3, 1))] = 1.0;

  std::vector<f64> y_cheb(n), y_cg(n);
  ChebyshevOptions cheb_options;
  cheb_options.tolerance = 1e-22;
  const auto cheb = chebyshev_solve<f64>(apply, b.data(), y_cheb.data(), n, bounds,
                                         cheb_options);
  const auto cg = conjugate_gradient<f64>(apply, b.data(), y_cg.data(), n,
                                          {.max_iterations = 10'000, .tolerance = 1e-22});
  ASSERT_TRUE(cheb.converged);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y_cheb[i], y_cg[i], 1e-8);
  // CG is optimal: Chebyshev takes at least as many operator applications.
  EXPECT_GE(cheb.operator_applications, cg.operator_applications);
}

TEST(Chebyshev, DivergenceGuardFiresOnWrongBounds) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 2, 3);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> b(n, 1.0), y(n);
  for (const auto& [idx, value] : problem.bc().sorted())
    b[static_cast<std::size_t>(idx)] = 0.0;
  // Bounds far BELOW the true lambda_max: the Chebyshev polynomial grows
  // without bound on modes above the interval, so the residual explodes —
  // the guard must stop it instead of looping to max_iterations. (Modes
  // *below* the interval merely converge slowly; above is the fatal case.)
  ChebyshevOptions options;
  options.tolerance = 1e-24;
  options.max_iterations = 100'000;
  const auto result = chebyshev_solve<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, b.data(), y.data(), n,
      {0.01, 0.5}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_LT(result.iterations, options.max_iterations);
}

TEST(Chebyshev, RejectsInvalidBounds) {
  std::vector<f64> b(4, 1.0), y(4);
  const auto apply = [](const f64* in, f64* out) { std::copy(in, in + 4, out); };
  EXPECT_THROW(chebyshev_solve<f64>(apply, b.data(), y.data(), 4, {2.0, 1.0}), Error);
  EXPECT_THROW(chebyshev_solve<f64>(apply, b.data(), y.data(), 4, {0.0, 1.0}), Error);
}

// ---------- device Chebyshev ----------

struct DeviceSetup {
  FlowProblem problem;
  SpectralBounds bounds;
};

DeviceSetup device_setup(i64 nx, i64 ny, i64 nz, u64 seed) {
  FlowProblem problem = FlowProblem::quarter_five_spot(nx, ny, nz, seed, 0.8);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto bounds = estimate_spectral_bounds<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); },
      static_cast<std::size_t>(sys.cell_count()));
  return {std::move(problem), bounds};
}

TEST(DeviceChebyshev, MatchesHostOracle) {
  const auto setup = device_setup(5, 5, 4, 7);
  core::ChebyshevDeviceConfig config;
  config.bounds = setup.bounds;
  config.tolerance = 1e-13f;
  config.check_every = 8;
  const auto device = core::solve_dataflow_chebyshev(setup.problem, config);
  ASSERT_TRUE(device.converged);
  const auto report = core::compare_with_host(setup.problem, device, 1e-24);
  EXPECT_LT(report.rel_l2_error, 2e-4) << report.summary();
}

TEST(DeviceChebyshev, UsesFarFewerReduceMessagesThanCg) {
  const auto setup = device_setup(6, 6, 4, 11);

  core::DataflowConfig cg_config;
  cg_config.tolerance = 1e-12f;
  const auto cg = core::solve_dataflow(setup.problem, cg_config);

  core::ChebyshevDeviceConfig cheb_config;
  cheb_config.bounds = setup.bounds;
  cheb_config.tolerance = 1e-12f;
  cheb_config.check_every = 32;
  const auto cheb = core::solve_dataflow_chebyshev(setup.problem, cheb_config);

  ASSERT_TRUE(cg.converged);
  ASSERT_TRUE(cheb.converged);
  // Chebyshev takes more iterations (no dot products to optimize over)...
  EXPECT_GE(cheb.iterations, cg.iterations);
  // ...but runs dramatically fewer all-reduces: CG needs 2 per iteration,
  // Chebyshev one probe per check_every iterations. Compare global message
  // traffic per iteration (halo messages are equal per iteration).
  const f64 cg_msgs_per_iter =
      static_cast<f64>(cg.fabric.messages_sent) / static_cast<f64>(cg.iterations);
  const f64 cheb_msgs_per_iter = static_cast<f64>(cheb.fabric.messages_sent) /
                                 static_cast<f64>(cheb.iterations);
  EXPECT_LT(cheb_msgs_per_iter, 0.75 * cg_msgs_per_iter);
}

TEST(DeviceChebyshev, WorksWithOnTheFlyKernelAndShift) {
  auto setup = device_setup(4, 4, 3, 3);
  core::ChebyshevDeviceConfig config;
  config.flux_mode = core::FluxMode::OnTheFly;
  config.diagonal_shift = 0.5f;
  config.bounds = {setup.bounds.lambda_min + 0.5, setup.bounds.lambda_max + 0.5};
  // fp32 Chebyshev's attainable residual floor scales with the problem;
  // use a tolerance safely above it.
  config.tolerance = 1e-9f;
  config.max_iterations = 5000;
  const auto device = core::solve_dataflow_chebyshev(setup.problem, config);
  ASSERT_TRUE(device.converged) << "final rr " << device.final_rr;
  EXPECT_GT(device.iterations, 0u);

  // Cross-check against the host transient-style shifted solve.
  const auto sys = setup.problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  const auto p0 = setup.problem.initial_pressure();
  std::vector<f64> rhs(n), q(n), delta(n);
  op.apply(p0.data(), q.data());
  for (std::size_t i = 0; i < n; ++i)
    rhs[i] = sys.dirichlet[i] ? 0.0 : -q[i];
  const auto shifted = [&](const f64* in, f64* out) {
    op.apply(in, out);
    for (std::size_t i = 0; i < n; ++i)
      if (!sys.dirichlet[i]) out[i] += 0.5 * in[i];
  };
  const auto cg = conjugate_gradient<f64>(shifted, rhs.data(), delta.data(), n,
                                          {.max_iterations = 5000, .tolerance = 1e-24});
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(static_cast<f64>(device.pressure[i]), p0[i] + delta[i], 5e-4);
}

} // namespace
} // namespace fvdf
