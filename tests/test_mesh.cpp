// Mesh layer tests: indexing layout (X innermost, Z outermost), neighbor
// topology, face indexing, permeability generators, TPFA transmissibility
// properties (harmonic mean, symmetry, boundary behavior), Dirichlet sets.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mesh/bc.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"
#include "mesh/transmissibility.hpp"

namespace fvdf {
namespace {

// ---------- CartesianMesh3D ----------

TEST(Mesh, IndexLayoutIsXInnermostZOutermost) {
  const CartesianMesh3D mesh(4, 3, 2);
  EXPECT_EQ(mesh.index(0, 0, 0), 0);
  EXPECT_EQ(mesh.index(1, 0, 0), 1);      // +1 in x moves by 1
  EXPECT_EQ(mesh.index(0, 1, 0), 4);      // +1 in y moves by nx
  EXPECT_EQ(mesh.index(0, 0, 1), 12);     // +1 in z moves by nx*ny
  EXPECT_EQ(mesh.index(3, 2, 1), 23);
  EXPECT_EQ(mesh.cell_count(), 24);
}

TEST(Mesh, CoordRoundTripsIndex) {
  const CartesianMesh3D mesh(5, 4, 3);
  for (CellIndex k = 0; k < mesh.cell_count(); ++k) {
    const CellCoord c = mesh.coord(k);
    EXPECT_EQ(mesh.index(c), k);
  }
}

TEST(Mesh, RejectsInvalidDimensions) {
  EXPECT_THROW(CartesianMesh3D(0, 1, 1), Error);
  EXPECT_THROW(CartesianMesh3D(1, -2, 1), Error);
  EXPECT_THROW(CartesianMesh3D(1, 1, 1, 0.0), Error);
}

TEST(Mesh, InteriorCellHasSixNeighbors) {
  const CartesianMesh3D mesh(3, 3, 3);
  const CellCoord center{1, 1, 1};
  int count = 0;
  for (Face face : kAllFaces)
    if (mesh.neighbor(center, face)) ++count;
  EXPECT_EQ(count, 6); // the 7-point stencil of Fig. 1
}

TEST(Mesh, CornerCellHasThreeNeighbors) {
  const CartesianMesh3D mesh(3, 3, 3);
  int count = 0;
  for (Face face : kAllFaces)
    if (mesh.neighbor({0, 0, 0}, face)) ++count;
  EXPECT_EQ(count, 3);
}

TEST(Mesh, NeighborDirectionsAreCorrect) {
  const CartesianMesh3D mesh(3, 3, 3);
  const CellCoord c{1, 1, 1};
  EXPECT_EQ(mesh.neighbor(c, Face::West)->x, 0);
  EXPECT_EQ(mesh.neighbor(c, Face::East)->x, 2);
  EXPECT_EQ(mesh.neighbor(c, Face::South)->y, 0);
  EXPECT_EQ(mesh.neighbor(c, Face::North)->y, 2);
  EXPECT_EQ(mesh.neighbor(c, Face::Down)->z, 0);
  EXPECT_EQ(mesh.neighbor(c, Face::Up)->z, 2);
}

TEST(Mesh, OppositeFacesPairUp) {
  for (Face face : kAllFaces) EXPECT_EQ(opposite(opposite(face)), face);
  EXPECT_EQ(opposite(Face::West), Face::East);
  EXPECT_EQ(opposite(Face::Down), Face::Up);
}

TEST(Mesh, FaceGeometryMatchesSpacing) {
  const CartesianMesh3D mesh(2, 2, 2, 1.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(mesh.face_area(Face::East), 8.0);  // dy*dz
  EXPECT_DOUBLE_EQ(mesh.face_area(Face::North), 4.0); // dx*dz
  EXPECT_DOUBLE_EQ(mesh.face_area(Face::Up), 2.0);    // dx*dy
  EXPECT_DOUBLE_EQ(mesh.center_distance(Face::East), 1.0);
  EXPECT_DOUBLE_EQ(mesh.center_distance(Face::North), 2.0);
  EXPECT_DOUBLE_EQ(mesh.center_distance(Face::Up), 4.0);
  EXPECT_DOUBLE_EQ(mesh.cell_volume(), 8.0);
}

TEST(Mesh, FaceCountsMatchFormula) {
  const CartesianMesh3D mesh(5, 4, 3);
  EXPECT_EQ(mesh.x_face_count(), 4 * 4 * 3);
  EXPECT_EQ(mesh.y_face_count(), 5 * 3 * 3);
  EXPECT_EQ(mesh.z_face_count(), 5 * 4 * 2);
}

TEST(Mesh, FaceIndicesAreDenseAndUnique) {
  const CartesianMesh3D mesh(4, 3, 2);
  std::vector<bool> seen(static_cast<std::size_t>(mesh.x_face_count()), false);
  for (i64 z = 0; z < 2; ++z)
    for (i64 y = 0; y < 3; ++y)
      for (i64 x = 0; x < 3; ++x) {
        const CellIndex f = mesh.x_face_index(x, y, z);
        ASSERT_GE(f, 0);
        ASSERT_LT(f, mesh.x_face_count());
        EXPECT_FALSE(seen[static_cast<std::size_t>(f)]);
        seen[static_cast<std::size_t>(f)] = true;
      }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Mesh, DescribeMentionsDims) {
  const CartesianMesh3D mesh(7, 8, 9);
  EXPECT_NE(mesh.describe().find("7x8x9"), std::string::npos);
}

// ---------- CellField & permeability generators ----------

TEST(Fields, HomogeneousIsConstant) {
  const CartesianMesh3D mesh(3, 3, 3);
  const auto field = perm::homogeneous(mesh, 5.0);
  for (f64 v : field.data()) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(Fields, HomogeneousRejectsNonPositive) {
  const CartesianMesh3D mesh(2, 2, 2);
  EXPECT_THROW(perm::homogeneous(mesh, 0.0), Error);
}

TEST(Fields, LayeredAlternatesByThickness) {
  const CartesianMesh3D mesh(2, 2, 6);
  const auto field = perm::layered(mesh, 1.0, 100.0, 2);
  EXPECT_DOUBLE_EQ(field.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, 2), 100.0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, 3), 100.0);
  EXPECT_DOUBLE_EQ(field.at(0, 0, 4), 1.0);
}

TEST(Fields, LognormalIsPositiveAndHeterogeneous) {
  const CartesianMesh3D mesh(6, 6, 4);
  Rng rng(5);
  const auto field = perm::lognormal(mesh, rng, 0.0, 1.0);
  f64 lo = 1e300, hi = -1e300;
  for (f64 v : field.data()) {
    EXPECT_GT(v, 0.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1.5); // actually heterogeneous
}

TEST(Fields, LognormalSmoothingReducesVariance) {
  const CartesianMesh3D mesh(8, 8, 4);
  Rng rng1(5), rng2(5);
  const auto rough = perm::lognormal(mesh, rng1, 0.0, 1.0, /*smoothing=*/0);
  const auto smooth = perm::lognormal(mesh, rng2, 0.0, 1.0, /*smoothing=*/3);
  auto log_variance = [](const CellField<f64>& f) {
    f64 mean = 0;
    for (f64 v : f.data()) mean += std::log(v);
    mean /= static_cast<f64>(f.size());
    f64 var = 0;
    for (f64 v : f.data()) var += (std::log(v) - mean) * (std::log(v) - mean);
    return var / static_cast<f64>(f.size());
  };
  EXPECT_LT(log_variance(smooth), log_variance(rough));
}

TEST(Fields, ChannelizedContainsBothValues) {
  const CartesianMesh3D mesh(16, 8, 4);
  Rng rng(17);
  const auto field = perm::channelized(mesh, rng, 1.0, 1000.0, 3);
  bool has_background = false, has_channel = false;
  for (f64 v : field.data()) {
    if (v == 1.0) has_background = true;
    if (v == 1000.0) has_channel = true;
  }
  EXPECT_TRUE(has_background);
  EXPECT_TRUE(has_channel);
}

TEST(Fields, ConstantMobilityIsInverseViscosity) {
  const CartesianMesh3D mesh(2, 2, 2);
  const auto mob = constant_mobility(mesh, 4.0);
  for (f64 v : mob.data()) EXPECT_DOUBLE_EQ(v, 0.25);
}

// ---------- Transmissibility ----------

TEST(Transmissibility, HarmonicMeanProperties) {
  EXPECT_DOUBLE_EQ(harmonic_mean(2.0, 2.0), 2.0); // equal values
  EXPECT_DOUBLE_EQ(harmonic_mean(1.0, 0.0), 0.0); // impermeable side kills flux
  EXPECT_DOUBLE_EQ(harmonic_mean(0.0, 5.0), 0.0);
  // Dominated by the smaller value.
  EXPECT_LT(harmonic_mean(1.0, 1000.0), 2.0001);
  EXPECT_GT(harmonic_mean(1.0, 1000.0), 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(harmonic_mean(3.0, 7.0), harmonic_mean(7.0, 3.0));
}

TEST(Transmissibility, HomogeneousUnitMeshGivesUnitFactors) {
  const CartesianMesh3D mesh(3, 3, 3);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto trans = compute_transmissibility(mesh, field);
  // A/d = 1 for unit cubes; harmonic(1,1) = 1.
  for (f64 t : trans.x_faces) EXPECT_DOUBLE_EQ(t, 1.0);
  for (f64 t : trans.y_faces) EXPECT_DOUBLE_EQ(t, 1.0);
  for (f64 t : trans.z_faces) EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Transmissibility, AnisotropicSpacingScalesGeometry) {
  const CartesianMesh3D mesh(2, 2, 2, 2.0, 1.0, 1.0);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto trans = compute_transmissibility(mesh, field);
  // X faces: A = dy*dz = 1, d = dx = 2 -> 0.5.
  EXPECT_DOUBLE_EQ(trans.x_faces[0], 0.5);
  // Y faces: A = dx*dz = 2, d = dy = 1 -> 2.
  EXPECT_DOUBLE_EQ(trans.y_faces[0], 2.0);
}

TEST(Transmissibility, AtReturnsZeroOnBoundary) {
  const CartesianMesh3D mesh(3, 3, 3);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto trans = compute_transmissibility(mesh, field);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {0, 1, 1}, Face::West), 0.0);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {2, 1, 1}, Face::East), 0.0);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {1, 0, 1}, Face::South), 0.0);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {1, 2, 1}, Face::North), 0.0);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {1, 1, 0}, Face::Down), 0.0);
  EXPECT_DOUBLE_EQ(trans.at(mesh, {1, 1, 2}, Face::Up), 0.0);
}

TEST(Transmissibility, AtIsSymmetricAcrossTheFace) {
  const CartesianMesh3D mesh(4, 4, 4);
  Rng rng(3);
  const auto field = perm::lognormal(mesh, rng, 0.0, 1.0);
  const auto trans = compute_transmissibility(mesh, field);
  for (Face face : kAllFaces) {
    const CellCoord c{1, 2, 1};
    const auto nb = mesh.neighbor(c, face);
    ASSERT_TRUE(nb);
    EXPECT_DOUBLE_EQ(trans.at(mesh, c, face), trans.at(mesh, *nb, opposite(face)));
  }
}

TEST(Transmissibility, LowPermeabilityLayerThrottlesVerticalFlow) {
  const CartesianMesh3D mesh(2, 2, 3);
  auto field = perm::homogeneous(mesh, 100.0);
  field.at(0, 0, 1) = 1e-6; // a shale streak in the middle cell
  const auto trans = compute_transmissibility(mesh, field);
  const f64 across = trans.at(mesh, {0, 0, 0}, Face::Up);
  EXPECT_LT(across, 1e-5);
}

// ---------- DirichletSet ----------

TEST(Dirichlet, PinAndLookup) {
  DirichletSet set;
  set.pin(3, 1.5);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
  EXPECT_DOUBLE_EQ(set.value(3), 1.5);
  EXPECT_THROW(set.value(4), Error);
}

TEST(Dirichlet, RepinOverwrites) {
  DirichletSet set;
  set.pin(1, 1.0);
  set.pin(1, 2.0);
  EXPECT_DOUBLE_EQ(set.value(1), 2.0);
  EXPECT_EQ(set.size(), 1u);
}

TEST(Dirichlet, SortedIsAscending) {
  DirichletSet set;
  set.pin(9, 1.0);
  set.pin(2, 2.0);
  set.pin(5, 3.0);
  const auto sorted = set.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 2);
  EXPECT_EQ(sorted[1].first, 5);
  EXPECT_EQ(sorted[2].first, 9);
}

TEST(Dirichlet, InjectorProducerPinsFullCornerColumns) {
  const CartesianMesh3D mesh(4, 5, 3);
  const auto set = DirichletSet::injector_producer(mesh, 10.0, 1.0);
  EXPECT_EQ(set.size(), 6u); // 2 wells x nz
  for (i64 z = 0; z < 3; ++z) {
    EXPECT_DOUBLE_EQ(set.value(mesh.index(0, 0, z)), 10.0);
    EXPECT_DOUBLE_EQ(set.value(mesh.index(3, 4, z)), 1.0);
  }
}

TEST(Dirichlet, RejectsNegativeIndex) {
  DirichletSet set;
  EXPECT_THROW(set.pin(-1, 0.0), Error);
}

} // namespace
} // namespace fvdf
