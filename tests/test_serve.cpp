// Serve subsystem tests: JSON parser strictness, content-addressed cache
// key stability, concurrent-job determinism against single-shot runs,
// cancellation / deadlines, spool-based restart, and the socket server
// end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "app/scenario.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/jobs.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace fvdf::serve {
namespace {

// ---------- JSON parser ----------

TEST(ServeJson, ParsesScalarsAndContainers) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x\ny"}, "n": -3})");
  EXPECT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get_f64("a", 0), 1.5);
  EXPECT_EQ(v.get_i64("n", 0), -3);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_EQ(b->items()[2].kind(), JsonValue::Kind::Null);
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->get_string("d", ""), "x\ny");
}

TEST(ServeJson, DecodesUnicodeEscapes) {
  const JsonValue v = JsonValue::parse(R"(["\u0041\u00e9", "\ud83d\ude00"])");
  EXPECT_EQ(v.items()[0].as_string(), "A\xc3\xa9");
  EXPECT_EQ(v.items()[1].as_string(), "\xf0\x9f\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(JsonValue::parse("[1 2]"), Error);
  EXPECT_THROW(JsonValue::parse("01"), Error);
  EXPECT_THROW(JsonValue::parse("1e"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("\"\\ud800\""), Error); // unpaired surrogate
  EXPECT_THROW(JsonValue::parse("{} {}"), Error);       // trailing content
  EXPECT_THROW(JsonValue::parse("nul"), Error);
}

TEST(ServeJson, TypedGettersThrowOnWrongKind) {
  const JsonValue v = JsonValue::parse(R"({"s": "text", "n": 4})");
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
  EXPECT_THROW(v.get_i64("s", 0), Error); // present but wrong kind
  EXPECT_THROW(v.get_string("n", ""), Error);
  EXPECT_THROW(JsonValue::parse("2.5").as_i64(), Error); // not integral
}

TEST(ServeJson, RoundTripsWriterOutput) {
  // The daemon parses what JsonWriter emits; prove the pair agrees on a
  // case-text payload with newlines and quotes.
  const std::string text = "[mesh]\nnx = 4\n# \"quoted\"\n";
  telemetry::JsonWriter writer;
  writer.begin_object().kv("case", text).end_object();
  const JsonValue parsed = JsonValue::parse(writer.take());
  EXPECT_EQ(parsed.get_string("case", ""), text);
}

// ---------- Case canonicalization / cache keys ----------

constexpr const char* kBaseCase = R"(
[mesh]
nx = 8
ny = 8
nz = 2

[perm]
kind = lognormal
sigma = 1.0
seed = 7

[solver]
backend = dataflow
tolerance = 1e-8
)";

TEST(ServeCacheKey, ExecutionKnobsDoNotChangeTheFingerprint) {
  const Config base = Config::parse_string(kBaseCase);
  const std::string fp = app::case_fingerprint(base);

  // sim_threads, verify and output artifacts never change results, so
  // they must not change the key either.
  const Config variant = Config::parse_string(
      std::string(kBaseCase) +
      "sim_threads = 4\nverify = true\n\n[output]\nvtk = out.vtk\n");
  EXPECT_EQ(app::case_fingerprint(variant), fp);

  // Spelling defaults explicitly is also identity.
  const Config spelled = Config::parse_string(
      std::string(kBaseCase) + "max_iterations = 100000\n");
  EXPECT_EQ(app::case_fingerprint(spelled), fp);
}

TEST(ServeCacheKey, PhysicsChangesChangeTheFingerprint) {
  const Config base = Config::parse_string(kBaseCase);
  const std::string fp = app::case_fingerprint(base);
  const char* variants[] = {
      "[mesh]\nnx = 9\nny = 8\nnz = 2\n[perm]\nkind = lognormal\nsigma = "
      "1.0\nseed = 7\n[solver]\nbackend = dataflow\ntolerance = 1e-8\n",
      "[mesh]\nnx = 8\nny = 8\nnz = 2\n[perm]\nkind = lognormal\nsigma = "
      "1.0\nseed = 8\n[solver]\nbackend = dataflow\ntolerance = 1e-8\n",
      "[mesh]\nnx = 8\nny = 8\nnz = 2\n[perm]\nkind = lognormal\nsigma = "
      "1.0\nseed = 7\n[solver]\nbackend = dataflow\ntolerance = 1e-9\n",
  };
  for (const char* text : variants)
    EXPECT_NE(app::case_fingerprint(Config::parse_string(text)), fp) << text;
}

TEST(ServeCache, CountsHitsMissesAndEvictions) {
  telemetry::MetricsRegistry metrics(1);
  ArtifactCache cache(2, &metrics);
  const Config a = Config::parse_string(kBaseCase);
  bool hit = true;
  auto entry1 = cache.acquire(a, &hit);
  EXPECT_FALSE(hit);
  auto entry2 = cache.acquire(a, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(entry1.get(), entry2.get());
  EXPECT_EQ(entry1->problem.get(), entry2->problem.get());

  // Two more distinct cases overflow capacity 2 and evict the oldest.
  const std::string text(kBaseCase);
  cache.acquire(Config::parse_string(text + "max_iterations = 7\n"));
  cache.acquire(Config::parse_string(text + "max_iterations = 9\n"));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(metrics.counter_value(metrics.counter("serve.cache.hits")), 1u);
  EXPECT_EQ(metrics.counter_value(metrics.counter("serve.cache.misses")), 3u);
  EXPECT_EQ(metrics.counter_value(metrics.counter("serve.cache.evictions")),
            1u);
}

// ---------- Job manager ----------

struct EventLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<JsonValue> events;

  EventSink sink() {
    return [this](const std::string& line) {
      JsonValue event = JsonValue::parse(line); // every event line is JSON
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back(std::move(event));
      cv.notify_all();
    };
  }

  // Blocks until an event for `id` with kind `event` arrives; returns it.
  JsonValue await(const std::string& id, const std::string& kind) {
    std::unique_lock<std::mutex> lock(mutex);
    JsonValue found;
    cv.wait(lock, [&] {
      for (const JsonValue& e : events)
        if (e.get_string("id", "") == id && e.get_string("event", "") == kind) {
          found = e;
          return true;
        }
      return false;
    });
    return found;
  }

  i64 count(const std::string& id, const std::string& kind) {
    std::lock_guard<std::mutex> lock(mutex);
    i64 n = 0;
    for (const JsonValue& e : events)
      n += (e.get_string("id", "") == id && e.get_string("event", "") == kind);
    return n;
  }
};

std::string hash_of(const std::vector<f64>& values) {
  return hash_hex(fnv1a64(values.data(), values.size() * sizeof(f64)));
}

TEST(ServeJobs, ConcurrentJobsMatchSingleShotBitwise) {
  // Two distinct cases, several concurrent submissions each, two workers:
  // every result hash must equal the single-shot run_scenario hash of the
  // same case — concurrency and artifact reuse never change results.
  const std::string case_a(kBaseCase);
  const std::string case_b(std::string(kBaseCase) + "max_iterations = 50\n");

  std::map<std::string, std::string> expected;
  for (const auto& [name, text] :
       {std::pair<std::string, std::string>{"a", case_a}, {"b", case_b}}) {
    auto scenario = app::scenario_from_config(Config::parse_string(text));
    std::ostringstream log;
    expected[name] = hash_of(app::run_scenario(scenario, log).pressure);
  }

  auto cache = std::make_shared<ArtifactCache>(8);
  JobManagerConfig config;
  config.workers = 2;
  EventLog log;
  JobManager jobs(cache, config);
  for (int i = 0; i < 3; ++i) {
    for (const auto& [name, text] :
         {std::pair<std::string, std::string>{"a", case_a}, {"b", case_b}}) {
      JobSpec spec;
      spec.id = name + std::to_string(i);
      spec.case_text = text;
      ASSERT_TRUE(jobs.submit(std::move(spec), log.sink()));
    }
  }
  jobs.wait_idle();
  for (int i = 0; i < 3; ++i) {
    for (const char* name : {"a", "b"}) {
      const JsonValue result = log.await(name + std::to_string(i), "result");
      EXPECT_EQ(result.get_string("pressure_hash", ""), expected[name])
          << name << i;
      EXPECT_TRUE(result.get_bool("converged", false));
    }
  }
  // 2 misses (first of each case), 4 hits.
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().hits, 4u);
}

TEST(ServeJobs, SimThreadsOverrideKeepsResultsIdentical) {
  auto cache = std::make_shared<ArtifactCache>(4);
  JobManagerConfig config;
  config.workers = 1;
  EventLog log;
  JobManager jobs(cache, config);
  std::string first_hash;
  int index = 0;
  for (const i32 threads : {1, 2, 4}) {
    JobSpec spec;
    spec.id = "t" + std::to_string(index++);
    spec.case_text = kBaseCase;
    spec.sim_threads = threads;
    ASSERT_TRUE(jobs.submit(std::move(spec), log.sink()));
  }
  jobs.wait_idle();
  for (int i = 0; i < index; ++i) {
    const JsonValue result = log.await("t" + std::to_string(i), "result");
    const std::string hash = result.get_string("pressure_hash", "");
    if (first_hash.empty()) first_hash = hash;
    EXPECT_EQ(hash, first_hash) << "sim_threads changed the result";
  }
}

constexpr const char* kTransientCase = R"(
[mesh]
nx = 8
ny = 8
nz = 1

[perm]
kind = layered

[solver]
backend = dataflow
tolerance = 1e-8

[transient]
enabled = true
dt = 0.5
steps = 12
)";

TEST(ServeJobs, RejectsBadSubmissions) {
  auto cache = std::make_shared<ArtifactCache>(4);
  JobManagerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  EventLog log;
  JobManager jobs(cache, config);

  std::string code;
  JobSpec bad_id;
  bad_id.id = "no spaces allowed";
  bad_id.case_text = kBaseCase;
  EXPECT_FALSE(jobs.submit(bad_id, log.sink(), &code));
  EXPECT_EQ(code, "invalid_id");

  // Fill the single queue slot behind a busy worker, then overflow it.
  JobSpec running;
  running.id = "busy";
  running.case_text = kTransientCase;
  ASSERT_TRUE(jobs.submit(running, log.sink()));
  log.await("busy", "accepted");

  JobSpec queued;
  queued.id = "queued";
  queued.case_text = kBaseCase;
  JobSpec duplicate = queued;
  JobSpec overflow;
  overflow.id = "overflow";
  overflow.case_text = kBaseCase;

  // The busy job may briefly still be queued; poll until the slot frees.
  while (!jobs.submit(queued, log.sink(), &code))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(jobs.submit(duplicate, log.sink(), &code));
  EXPECT_EQ(code, "duplicate_id");
  EXPECT_FALSE(jobs.submit(overflow, log.sink(), &code));
  EXPECT_EQ(code, "queue_full");
  jobs.wait_idle();

  // An unparseable case fails with an actionable invalid_case error.
  JobSpec invalid;
  invalid.id = "invalid";
  invalid.case_text = "[mesh]\nnx = not_a_number\n";
  ASSERT_TRUE(jobs.submit(invalid, log.sink()));
  const JsonValue error = log.await("invalid", "error");
  EXPECT_EQ(error.get_string("code", ""), "invalid_case");
  EXPECT_FALSE(error.get_string("message", "").empty());
}

TEST(ServeJobs, CancelsQueuedAndRunningJobs) {
  auto cache = std::make_shared<ArtifactCache>(4);
  JobManagerConfig config;
  config.workers = 1;
  EventLog log;
  JobManager jobs(cache, config);

  // Occupy the worker with a streaming transient job, queue another.
  JobSpec running;
  running.id = "victim-running";
  running.case_text = kTransientCase;
  running.stream_residuals = true;
  ASSERT_TRUE(jobs.submit(running, log.sink()));
  JobSpec queued;
  queued.id = "victim-queued";
  queued.case_text = kBaseCase;
  ASSERT_TRUE(jobs.submit(queued, log.sink()));

  // Queued job dies immediately.
  EXPECT_TRUE(jobs.cancel("victim-queued"));
  const JsonValue queued_error = log.await("victim-queued", "error");
  EXPECT_EQ(queued_error.get_string("code", ""), "cancelled");

  // Running transient job stops at the next step boundary.
  log.await("victim-running", "step");
  EXPECT_TRUE(jobs.cancel("victim-running"));
  const JsonValue running_error = log.await("victim-running", "error");
  EXPECT_EQ(running_error.get_string("code", ""), "cancelled");
  EXPECT_NE(running_error.get_string("message", "").find("step"),
            std::string::npos);
  jobs.wait_idle();
  EXPECT_FALSE(jobs.cancel("victim-running")); // already terminal
}

TEST(ServeJobs, DeadlineExpiresLongTransientRuns) {
  auto cache = std::make_shared<ArtifactCache>(4);
  JobManagerConfig config;
  config.workers = 1;
  EventLog log;
  JobManager jobs(cache, config);
  JobSpec spec;
  spec.id = "deadline";
  spec.case_text = kTransientCase;
  spec.deadline_seconds = 0.001; // expires during the first steps
  ASSERT_TRUE(jobs.submit(std::move(spec), log.sink()));
  const JsonValue error = log.await("deadline", "error");
  EXPECT_EQ(error.get_string("code", ""), "deadline");
  jobs.wait_idle();
}

TEST(ServeJobs, RestartFromSpoolResumesBitwiseIdentical) {
  const auto spool =
      std::filesystem::temp_directory_path() / "fvdf_serve_spool_test";
  std::filesystem::remove_all(spool);

  // Reference: the uninterrupted single-shot run.
  auto scenario =
      app::scenario_from_config(Config::parse_string(kTransientCase));
  std::ostringstream ref_log;
  const std::string expected =
      hash_of(app::run_scenario(scenario, ref_log).pressure);

  // First manager: start the job, drain mid-run (the graceful-shutdown
  // path a SIGTERM takes), leaving the spool checkpoint behind.
  {
    auto cache = std::make_shared<ArtifactCache>(4);
    JobManagerConfig config;
    config.workers = 1;
    config.spool_dir = spool.string();
    EventLog log;
    JobManager jobs(cache, config);
    JobSpec spec;
    spec.id = "restartable";
    spec.case_text = kTransientCase;
    spec.stream_residuals = true;
    ASSERT_TRUE(jobs.submit(std::move(spec), log.sink()));
    log.await("restartable", "step");
    jobs.shutdown_graceful();
    const JsonValue error = log.await("restartable", "error");
    EXPECT_EQ(error.get_string("code", ""), "shutdown");
  }
  EXPECT_TRUE(std::filesystem::exists(spool / "restartable.case.ini"));
  EXPECT_TRUE(std::filesystem::exists(spool / "restartable.ckpt"));

  // Second manager: recover and finish; final state must match the
  // uninterrupted run bitwise.
  {
    auto cache = std::make_shared<ArtifactCache>(4);
    JobManagerConfig config;
    config.workers = 1;
    config.spool_dir = spool.string();
    EventLog log;
    JobManager jobs(cache, config);
    EXPECT_EQ(jobs.recover(log.sink()), 1);
    const JsonValue result = log.await("restartable", "result");
    EXPECT_EQ(result.get_string("pressure_hash", ""), expected);
    EXPECT_EQ(result.get_i64("steps_completed", 0), 12);
    jobs.wait_idle();
  }
  // Terminal success cleans the spool.
  EXPECT_FALSE(std::filesystem::exists(spool / "restartable.case.ini"));
  EXPECT_FALSE(std::filesystem::exists(spool / "restartable.ckpt"));
  std::filesystem::remove_all(spool);
}

// ---------- Socket server end to end ----------

TEST(ServeServer, SolvesOverUnixSocketWithCacheHits) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("fvdf_serve_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerConfig config;
  config.socket_path = socket_path;
  config.http_port = -1;
  config.jobs.workers = 2;
  Server server(std::move(config));
  server.start();

  auto scenario =
      app::scenario_from_config(Config::parse_string(kBaseCase));
  std::ostringstream ref_log;
  const std::string expected =
      hash_of(app::run_scenario(scenario, ref_log).pressure);

  Client client;
  client.connect(socket_path);
  client.ping();
  EXPECT_EQ(client.read_event().get_string("event", ""), "pong");

  for (int i = 0; i < 2; ++i) {
    Client::SolveRequest request;
    request.id = "net" + std::to_string(i);
    request.case_text = kBaseCase;
    client.solve(request);
    const JsonValue result = client.wait_result(request.id);
    EXPECT_EQ(result.get_string("event", ""), "result");
    EXPECT_EQ(result.get_string("pressure_hash", ""), expected);
    EXPECT_EQ(result.get_string("cache", ""), i == 0 ? "miss" : "hit");
  }

  client.stats();
  const JsonValue stats = client.read_event();
  EXPECT_EQ(stats.get_string("event", ""), "stats");
  const JsonValue* cache_stats = stats.find("cache");
  ASSERT_NE(cache_stats, nullptr);
  EXPECT_EQ(cache_stats->get_i64("hits", -1), 1);
  EXPECT_EQ(cache_stats->get_i64("misses", -1), 1);

  client.shutdown();
  EXPECT_EQ(client.read_event().get_string("event", ""), "ok");
  client.close();
  server.wait();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

} // namespace
} // namespace fvdf::serve
