// Fabric integration tests with tiny hand-written PE programs: wavelet
// delivery, inbox buffering, completion callbacks, control-wavelet switch
// advancement, backpressure stalls, edge drops, halt semantics, timing
// determinism and statistics.

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "csl/allreduce.hpp"
#include "csl/halo.hpp"
#include "csl/lowering.hpp"
#include "wse/bytecode.hpp"
#include "wse/bytecode_interp.hpp"
#include "wse/fabric.hpp"

namespace fvdf::wse {
namespace {

// A configurable test program driven by lambdas.
class LambdaProgram final : public PeProgram {
public:
  using StartFn = std::function<void(PeContext&)>;
  using TaskFn = std::function<void(PeContext&, Color)>;
  LambdaProgram(StartFn start, TaskFn task)
      : start_(std::move(start)), task_(std::move(task)) {}

  void on_start(PeContext& ctx) override {
    if (start_) start_(ctx);
  }
  void on_task(PeContext& ctx, Color color) override {
    if (task_) task_(ctx, color);
  }

private:
  StartFn start_;
  TaskFn task_;
};

ColorConfig to_east() {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)}};
  return config;
}

ColorConfig from_west() {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
  return config;
}

TEST(Fabric, PointToPointTransferDeliversWordsInOrder) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 4);
            for (u32 i = 0; i < 4; ++i)
              ctx.memory().store(src.offset_words + i, static_cast<f32>(i + 1));
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 4);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [=](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kDone);
          for (u32 i = 0; i < 4; ++i)
            EXPECT_FLOAT_EQ(ctx.memory().load(i), static_cast<f32>(i + 1));
          ctx.halt();
        });
  });
  const auto result = fabric.run();
  EXPECT_TRUE(result.all_halted);
  EXPECT_EQ(fabric.stats().words_delivered, 4u);
  EXPECT_GT(result.cycles, 0.0);
}

TEST(Fabric, InboxBuffersDataArrivingBeforeRecv) {
  // The receiver registers its descriptor only when poked by a later local
  // activation; words must wait in the inbox meanwhile.
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kDone = 26;
  bool received = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 2);
            ctx.memory().store(src.offset_words, 5.0f);
            ctx.memory().store(src.offset_words + 1, 6.0f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            (void)ctx.memory().alloc_f32("dst", 2);
            // No recv yet; let the data arrive first, then poke ourselves.
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            ctx.recv(kData, Dsd{0, 2, 1}, kDone);
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 5.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(1), 6.0f);
          received = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(received);
}

TEST(Fabric, MultiHopChainForwardsThroughMiddleRouter) {
  // PE0 -> PE2 through PE1's router (rx West, tx East) without touching
  // PE1's CPU.
  Fabric fabric(3, 1);
  constexpr Color kData = 1;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 9.0f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else if (coord.x == 1) {
            ColorConfig passthrough;
            passthrough.positions = {
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::East)}};
            ctx.configure_router(kData, passthrough);
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [=](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 9.0f);
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.stats().wavelet_hops, 2u); // two link traversals
}

TEST(Fabric, BroadcastFanoutDeliversToRampAndForwards) {
  // PE1 taps and forwards: one send reaches PE1 and PE2.
  Fabric fabric(3, 1);
  constexpr Color kData = 2;
  constexpr Color kDone = 24;
  int deliveries = 0;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 4.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else if (coord.x == 1) {
            ColorConfig tap;
            tap.positions = {SwitchPosition{DirMask::of(Dir::West),
                                            DirMask::of(Dir::Ramp, Dir::East)}};
            ctx.configure_router(kData, tap);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [&](PeContext& ctx, Color) {
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 4.5f);
          ++deliveries;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(deliveries, 2);
}

TEST(Fabric, ControlWaveletAdvancesEveryRouterItTraverses) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          ColorConfig ring;
          if (coord.x == 0) {
            ring.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::East), DirMask::of(Dir::Ramp)}};
          } else {
            ring.positions = {
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)},
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::West)}};
          }
          ring.ring_mode = true;
          ctx.configure_router(kData, ring);
          if (coord.x == 0) {
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 1.0f);
            // Data plus trailing control: both routers advance to pos 1.
            ctx.send(kData, dsd(src), color_bit(kData));
            ctx.halt();
          } else {
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [](PeContext& ctx, Color) { ctx.halt(); });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.pe_router(0, 0).position(kData), 1u);
  EXPECT_EQ(fabric.pe_router(1, 0).position(kData), 1u);
  EXPECT_GE(fabric.stats().control_wavelets, 1u);
}

TEST(Fabric, BackpressureStallsUntilAdvance) {
  // The receiver's switch starts in a position that rejects West arrivals;
  // the flit must park and deliver only after a local advance.
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kDone = 26;
  bool delivered = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 2.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ColorConfig wrong_then_right;
            wrong_then_right.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
            ctx.configure_router(kData, wrong_then_right);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
            // Burn enough cycles that the flit arrives (and stalls) before
            // the poke flips the switch.
            const MemSpan scratch = ctx.memory().alloc_f32("scratch", 512);
            ctx.dsd().fmovs_imm(dsd(scratch), 0.0f);
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            // Flip to the accepting position; the parked flit re-dispatches.
            ctx.advance_local(color_bit(kData));
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 2.5f);
          delivered = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(delivered);
  EXPECT_GE(fabric.stats().flits_stalled, 1u);
}

TEST(Fabric, EdgeSendsAreDroppedAndCounted) {
  Fabric fabric(1, 1);
  constexpr Color kData = 0;
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) {
          ctx.configure_router(kData, to_east());
          const MemSpan src = ctx.memory().alloc_f32("src", 3);
          ctx.send(kData, dsd(src));
          ctx.halt();
        },
        nullptr);
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.stats().words_dropped, 3u);
  EXPECT_EQ(fabric.stats().words_delivered, 0u);
}

TEST(Fabric, RunIsDeterministic) {
  auto run_once = [] {
    Fabric fabric(3, 3);
    constexpr Color kData = 0;
    constexpr Color kDone = 24;
    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord](PeContext& ctx) {
            if (coord.x == 0) {
              ctx.configure_router(kData, to_east());
              const MemSpan src = ctx.memory().alloc_f32("src", 8);
              for (u32 i = 0; i < 8; ++i)
                ctx.memory().store(src.offset_words + i,
                                   static_cast<f32>(coord.y * 100 + i));
              ctx.send(kData, dsd(src));
              ctx.halt();
            } else if (coord.x == 1) {
              ctx.configure_router(kData, from_west());
              const MemSpan dst = ctx.memory().alloc_f32("dst", 8);
              ctx.recv(kData, dsd(dst), kDone);
            } else {
              ctx.halt();
            }
          },
          [](PeContext& ctx, Color) {
            // Burn deterministic compute time proportional to the data.
            auto& e = ctx.dsd();
            e.fmuls_imm(Dsd{0, 8, 1}, Dsd{0, 8, 1}, 2.0f);
            ctx.halt();
          });
    });
    const auto result = fabric.run();
    return std::make_pair(result.cycles, fabric.stats().events_processed);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Fabric, CycleLimitStopsRunawayPrograms) {
  Fabric fabric(1, 1);
  constexpr Color kLoop = 24;
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) { ctx.activate(kLoop); },
        [](PeContext& ctx, Color) {
          // Ping-pong forever, each task burning a little time.
          auto& e = ctx.dsd();
          (void)e.fadds_scalar(1.0f, 2.0f);
          ctx.activate(kLoop);
        });
  });
  const auto result = fabric.run(/*max_cycles=*/5000);
  EXPECT_FALSE(result.all_halted);
  EXPECT_TRUE(result.hit_cycle_limit);
}

TEST(Fabric, SendCompletionFiresAfterInjection) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kSent = 24;
  bool sent = false;
  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 16);
            ctx.send(kData, dsd(src), 0, kSent);
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 16);
            ctx.recv(kData, dsd(dst), kSent);
          }
        },
        [&](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kSent);
          if (ctx.coord().x == 0) sent = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(sent);
}

TEST(Fabric, StatsAggregateCounters) {
  Fabric fabric(2, 2);
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) {
          const MemSpan a = ctx.memory().alloc_f32("a", 10);
          ctx.dsd().fmovs_imm(dsd(a), 1.0f);
          ctx.dsd().fmuls_imm(dsd(a), dsd(a), 2.0f);
          ctx.halt();
        },
        nullptr);
  });
  EXPECT_TRUE(fabric.run().all_halted);
  const OpCounters total = fabric.total_counters();
  EXPECT_EQ(total.count(Opcode::FMOV), 4u * 10);
  EXPECT_EQ(total.count(Opcode::FMUL), 4u * 10);
  EXPECT_EQ(total.total_flops(), 4u * 10);
  EXPECT_EQ(fabric.pe_counters(0, 0).count(Opcode::FMUL), 10u);
}

TEST(Fabric, InvalidUsagesThrow) {
  Fabric fabric(1, 1);
  EXPECT_THROW(fabric.run(), Error); // run before load
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>([](PeContext& ctx) { ctx.halt(); },
                                           nullptr);
  });
  EXPECT_THROW(fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(nullptr, nullptr);
  }),
               Error); // double load
  EXPECT_TRUE(fabric.run().all_halted);
}

TEST(Fabric, HostAccessorsRejectOutOfRangeCoordinates) {
  Fabric fabric(3, 2);
  EXPECT_THROW(fabric.pe_memory(-1, 0), Error);
  EXPECT_THROW(fabric.pe_memory(3, 0), Error);
  EXPECT_THROW(fabric.pe_memory(0, 2), Error);
  EXPECT_THROW(fabric.pe_router(0, -1), Error);
  EXPECT_THROW(fabric.pe_router(5, 5), Error);
  EXPECT_THROW(fabric.pe_counters(-2, 1), Error);
  EXPECT_NO_THROW(fabric.pe_memory(2, 1));
  EXPECT_NO_THROW(fabric.pe_router(0, 0));
  EXPECT_NO_THROW(fabric.pe_counters(2, 1));
}

TEST(Fabric, RejectedAdvanceReparksWithoutEventOrTraceInflation) {
  // The receiver's switch cycles through two rejecting positions before an
  // accepting one. The advance through a still-rejecting position must
  // re-park the flit directly: exactly one FlitStalled record and stall
  // count, no matter how many advances it takes to release it.
  Fabric fabric(2, 1);
  TraceBuffer trace;
  fabric.set_trace(trace.sink());
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kPoke2 = 26;
  constexpr Color kDone = 27;
  bool delivered = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 3.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ColorConfig wrong_wrong_right;
            wrong_wrong_right.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
            ctx.configure_router(kData, wrong_wrong_right);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
            // Let the flit arrive (and stall) before the pokes advance.
            const MemSpan scratch = ctx.memory().alloc_f32("scratch", 512);
            ctx.dsd().fmovs_imm(dsd(scratch), 0.0f);
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            ctx.advance_local(color_bit(kData)); // position 1: still rejects
            ctx.activate(kPoke2);
            return;
          }
          if (color == kPoke2) {
            ctx.advance_local(color_bit(kData)); // position 2: accepts
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 3.5f);
          delivered = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(fabric.stats().flits_stalled, 1u);
  EXPECT_EQ(trace.count(TraceEvent::FlitStalled), 1u);
}

TEST(Fabric, LargerMessagesTakeLongerOnTheLink) {
  auto timed_transfer = [](u32 words) {
    Fabric fabric(2, 1);
    constexpr Color kData = 0;
    constexpr Color kDone = 24;
    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord, words](PeContext& ctx) {
            if (coord.x == 0) {
              ctx.configure_router(kData, to_east());
              const MemSpan src = ctx.memory().alloc_f32("src", words);
              ctx.send(kData, dsd(src));
              ctx.halt();
            } else {
              ctx.configure_router(kData, from_west());
              const MemSpan dst = ctx.memory().alloc_f32("dst", words);
              ctx.recv(kData, dsd(dst), kDone);
            }
          },
          [](PeContext& ctx, Color) { ctx.halt(); });
    });
    return fabric.run().cycles;
  };
  EXPECT_GT(timed_transfer(256), timed_transfer(8));
}

// --- bytecode collective parity -------------------------------------------
// The lowered Table-I collectives (csl/lowering.hpp) must be bit-exact
// drop-ins for the legacy callback implementations: same memory contents,
// same fabric statistics (message counts, hops, task activations), same
// cycle totals, on every fabric shape. Each pair below runs one fabric
// with the legacy component and one with a hand-built bytecode program
// around the corresponding emitter.

f32 cell_fingerprint(i64 x, i64 y, u32 z) {
  return static_cast<f32>(x * 10000 + y * 100 + static_cast<i64>(z));
}

// One four-step halo exchange, then halt (legacy side).
class LegacyHaloProgram final : public PeProgram {
public:
  explicit LegacyHaloProgram(u32 nz) : nz_(nz) {}

  MemSpan column{}, west{}, east{}, south{}, north{};

  void on_start(PeContext& ctx) override {
    halo_.configure(ctx);
    alloc_and_fill(ctx, *this, nz_);
    halo_.start(
        ctx, dsd(column), dsd(west), dsd(east), dsd(south), dsd(north),
        [](PeContext&, Dir) {}, [](PeContext& c) { c.halt(); });
  }
  void on_task(PeContext& ctx, Color color) override { halo_.on_task(ctx, color); }

  template <typename P> static void alloc_and_fill(PeContext& ctx, P& p, u32 nz) {
    p.column = ctx.memory().alloc_f32("column", nz);
    for (u32 z = 0; z < nz; ++z)
      ctx.memory().store(p.column.offset_words + z,
                         cell_fingerprint(ctx.coord().x, ctx.coord().y, z));
    for (MemSpan* buf : {&p.west, &p.east, &p.south, &p.north}) {
      *buf = ctx.memory().alloc_f32("halo", nz);
      for (u32 z = 0; z < nz; ++z)
        ctx.memory().store(buf->offset_words + z, -1.0f);
    }
  }

private:
  u32 nz_;
  csl::HaloExchange halo_;
};

// The same exchange lowered through csl::HaloEmitter.
class BytecodeHaloProgram final : public PeProgram {
public:
  explicit BytecodeHaloProgram(u32 nz) : nz_(nz) {}

  MemSpan column{}, west{}, east{}, south{}, north{};

  void on_start(PeContext& ctx) override {
    halo_.configure(ctx); // identical router setup to the legacy component
    LegacyHaloProgram::alloc_and_fill(ctx, *this, nz_);

    bc::Builder b("halo-test");
    csl::HaloEmitter::Spec spec;
    spec.column = dsd(column);
    spec.west = dsd(west);
    spec.east = dsd(east);
    spec.south = dsd(south);
    spec.north = dsd(north);
    spec.cont_reg = 0;
    spec.pending_ureg = 0;
    csl::HaloEmitter halo(b, ctx.coord(), ctx.fabric_width(), ctx.fabric_height(),
                          std::move(spec));
    const auto entry = b.make_label();
    const auto done = b.make_label();
    b.bind(entry);
    b.setc(0, done);
    halo.emit_start();
    b.ret(); // start falls through, like the legacy overlapped control flow
    b.bind(done);
    b.halt();
    b.ret(); // HALT records the halt but does not stop interpretation
    halo.emit_handlers();
    b.set_entry(entry);
    program_ = std::make_shared<bc::Program>(b.finish());
    EXPECT_TRUE(bc::lint_program(*program_).empty());
    bc::run(ctx, vm_, *program_, program_->entry);
  }
  void on_task(PeContext& ctx, Color color) override {
    const u16 pc = vm_.handler[color];
    ASSERT_NE(pc, bc::kNoPc);
    bc::run(ctx, vm_, *program_, pc);
  }
  const bc::Program* bytecode() const override { return program_.get(); }
  bc::VmState* bytecode_state() override { return &vm_; }

private:
  u32 nz_;
  csl::HaloExchange halo_; // router configuration only
  std::shared_ptr<bc::Program> program_;
  bc::VmState vm_;
};

TEST(BytecodeCollectives, HaloExchangeMatchesLegacyBitwise) {
  constexpr u32 nz = 6;
  constexpr std::pair<i64, i64> kShapes[] = {{1, 1}, {2, 2}, {4, 3},
                                             {3, 4}, {5, 1}, {1, 5}};
  for (const auto& [width, height] : kShapes) {
    Fabric legacy_fabric(width, height);
    std::vector<LegacyHaloProgram*> legacy_pes;
    legacy_fabric.load([&](PeCoord) {
      auto p = std::make_unique<LegacyHaloProgram>(nz);
      legacy_pes.push_back(p.get());
      return p;
    });
    const auto legacy_run = legacy_fabric.run();
    ASSERT_TRUE(legacy_run.all_halted);

    Fabric bc_fabric(width, height);
    std::vector<BytecodeHaloProgram*> bc_pes;
    bc_fabric.load([&](PeCoord) {
      auto p = std::make_unique<BytecodeHaloProgram>(nz);
      bc_pes.push_back(p.get());
      return p;
    });
    const auto bc_run = bc_fabric.run();
    ASSERT_TRUE(bc_run.all_halted) << width << "x" << height;

    EXPECT_EQ(bc_run.cycles, legacy_run.cycles) << width << "x" << height;
    EXPECT_EQ(bc_fabric.stats(), legacy_fabric.stats()) << width << "x" << height;

    // Every word of every buffer — column untouched, halos bit-identical.
    ASSERT_EQ(bc_pes.size(), legacy_pes.size());
    for (i64 y = 0; y < height; ++y) {
      for (i64 x = 0; x < width; ++x) {
        const std::size_t i = static_cast<std::size_t>(y * width + x);
        PeMemory& bm = bc_fabric.pe_memory(x, y);
        PeMemory& lm = legacy_fabric.pe_memory(x, y);
        for (const MemSpan* span :
             {&bc_pes[i]->column, &bc_pes[i]->west, &bc_pes[i]->east,
              &bc_pes[i]->south, &bc_pes[i]->north}) {
          for (u32 z = 0; z < nz; ++z)
            EXPECT_EQ(bm.load(span->offset_words + z), lm.load(span->offset_words + z))
                << "PE(" << x << "," << y << ") word " << z;
        }
      }
    }
  }
}

// Whole-fabric all-reduce, one round, result stored to a known slot.
class LegacyReduceProgram final : public PeProgram {
public:
  explicit LegacyReduceProgram(f32 value) : value_(value) {}

  MemSpan result{};

  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx);
    result = ctx.memory().alloc_f32("result", 1);
    reduce_.start(ctx, value_, [this](PeContext& c, f32 total) {
      c.memory().store(result.offset_words, total);
      c.halt();
    });
  }
  void on_task(PeContext& ctx, Color color) override { reduce_.on_task(ctx, color); }

private:
  f32 value_;
  csl::AllReduce reduce_;
};

class BytecodeReduceProgram final : public PeProgram {
public:
  explicit BytecodeReduceProgram(f32 value) : value_(value) {}

  MemSpan result{};

  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx); // allocates the value/in slots + routes
    result = ctx.memory().alloc_f32("result", 1);

    bc::Builder b("reduce-test");
    csl::ReduceEmitter::Spec spec;
    spec.slot_value = reduce_.slot_value().offset_words;
    spec.slot_in = reduce_.slot_in().offset_words;
    spec.cont_reg = 1;
    csl::ReduceEmitter reduce(b, ctx.coord(), ctx.fabric_width(),
                              ctx.fabric_height(), spec);
    const auto entry = b.make_label();
    const auto after = b.make_label();
    b.bind(entry);
    reduce.emit_handler_bindings();
    b.umovi(0, value_); // contribution in f0
    b.setc(1, after);
    b.jmp(reduce.start_label());
    b.bind(after); // fabric total back in f0
    b.rstore(0, result.offset_words);
    b.halt();
    b.ret(); // HALT records the halt but does not stop interpretation
    reduce.emit_blocks();
    b.set_entry(entry);
    program_ = std::make_shared<bc::Program>(b.finish());
    EXPECT_TRUE(bc::lint_program(*program_).empty());
    bc::run(ctx, vm_, *program_, program_->entry);
  }
  void on_task(PeContext& ctx, Color color) override {
    const u16 pc = vm_.handler[color];
    ASSERT_NE(pc, bc::kNoPc);
    bc::run(ctx, vm_, *program_, pc);
  }
  const bc::Program* bytecode() const override { return program_.get(); }
  bc::VmState* bytecode_state() override { return &vm_; }

private:
  f32 value_;
  csl::AllReduce reduce_; // slot allocation + router configuration
  std::shared_ptr<bc::Program> program_;
  bc::VmState vm_;
};

TEST(BytecodeCollectives, AllReduceMatchesLegacyBitwise) {
  constexpr std::pair<i64, i64> kShapes[] = {{1, 1}, {2, 1}, {1, 3},
                                             {3, 2}, {4, 4}, {5, 3}};
  for (const auto& [width, height] : kShapes) {
    auto value_of = [](PeCoord c) {
      return 0.25f * static_cast<f32>(c.x) - 0.75f * static_cast<f32>(c.y) + 1.0f;
    };

    Fabric legacy_fabric(width, height);
    std::vector<LegacyReduceProgram*> legacy_pes;
    legacy_fabric.load([&](PeCoord c) {
      auto p = std::make_unique<LegacyReduceProgram>(value_of(c));
      legacy_pes.push_back(p.get());
      return p;
    });
    const auto legacy_run = legacy_fabric.run();
    ASSERT_TRUE(legacy_run.all_halted);

    Fabric bc_fabric(width, height);
    std::vector<BytecodeReduceProgram*> bc_pes;
    bc_fabric.load([&](PeCoord c) {
      auto p = std::make_unique<BytecodeReduceProgram>(value_of(c));
      bc_pes.push_back(p.get());
      return p;
    });
    const auto bc_run = bc_fabric.run();
    ASSERT_TRUE(bc_run.all_halted) << width << "x" << height;

    EXPECT_EQ(bc_run.cycles, legacy_run.cycles) << width << "x" << height;
    EXPECT_EQ(bc_fabric.stats(), legacy_fabric.stats()) << width << "x" << height;
    for (i64 y = 0; y < height; ++y) {
      for (i64 x = 0; x < width; ++x) {
        const std::size_t i = static_cast<std::size_t>(y * width + x);
        const f32 bc_total =
            bc_fabric.pe_memory(x, y).load(bc_pes[i]->result.offset_words);
        const f32 legacy_total =
            legacy_fabric.pe_memory(x, y).load(legacy_pes[i]->result.offset_words);
        EXPECT_EQ(bc_total, legacy_total) << "PE(" << x << "," << y << ")";
        EXPECT_NE(bc_total, 0.0f); // the reduction actually ran
      }
    }
  }
}

} // namespace
} // namespace fvdf::wse
