// Fabric integration tests with tiny hand-written PE programs: wavelet
// delivery, inbox buffering, completion callbacks, control-wavelet switch
// advancement, backpressure stalls, edge drops, halt semantics, timing
// determinism and statistics.

#include <gtest/gtest.h>

#include <functional>

#include "common/error.hpp"
#include "wse/fabric.hpp"

namespace fvdf::wse {
namespace {

// A configurable test program driven by lambdas.
class LambdaProgram final : public PeProgram {
public:
  using StartFn = std::function<void(PeContext&)>;
  using TaskFn = std::function<void(PeContext&, Color)>;
  LambdaProgram(StartFn start, TaskFn task)
      : start_(std::move(start)), task_(std::move(task)) {}

  void on_start(PeContext& ctx) override {
    if (start_) start_(ctx);
  }
  void on_task(PeContext& ctx, Color color) override {
    if (task_) task_(ctx, color);
  }

private:
  StartFn start_;
  TaskFn task_;
};

ColorConfig to_east() {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)}};
  return config;
}

ColorConfig from_west() {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
  return config;
}

TEST(Fabric, PointToPointTransferDeliversWordsInOrder) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 4);
            for (u32 i = 0; i < 4; ++i)
              ctx.memory().store(src.offset_words + i, static_cast<f32>(i + 1));
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 4);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [=](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kDone);
          for (u32 i = 0; i < 4; ++i)
            EXPECT_FLOAT_EQ(ctx.memory().load(i), static_cast<f32>(i + 1));
          ctx.halt();
        });
  });
  const auto result = fabric.run();
  EXPECT_TRUE(result.all_halted);
  EXPECT_EQ(fabric.stats().words_delivered, 4u);
  EXPECT_GT(result.cycles, 0.0);
}

TEST(Fabric, InboxBuffersDataArrivingBeforeRecv) {
  // The receiver registers its descriptor only when poked by a later local
  // activation; words must wait in the inbox meanwhile.
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kDone = 26;
  bool received = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 2);
            ctx.memory().store(src.offset_words, 5.0f);
            ctx.memory().store(src.offset_words + 1, 6.0f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            (void)ctx.memory().alloc_f32("dst", 2);
            // No recv yet; let the data arrive first, then poke ourselves.
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            ctx.recv(kData, Dsd{0, 2, 1}, kDone);
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 5.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(1), 6.0f);
          received = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(received);
}

TEST(Fabric, MultiHopChainForwardsThroughMiddleRouter) {
  // PE0 -> PE2 through PE1's router (rx West, tx East) without touching
  // PE1's CPU.
  Fabric fabric(3, 1);
  constexpr Color kData = 1;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 9.0f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else if (coord.x == 1) {
            ColorConfig passthrough;
            passthrough.positions = {
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::East)}};
            ctx.configure_router(kData, passthrough);
            ctx.halt();
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [=](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 9.0f);
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.stats().wavelet_hops, 2u); // two link traversals
}

TEST(Fabric, BroadcastFanoutDeliversToRampAndForwards) {
  // PE1 taps and forwards: one send reaches PE1 and PE2.
  Fabric fabric(3, 1);
  constexpr Color kData = 2;
  constexpr Color kDone = 24;
  int deliveries = 0;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 4.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else if (coord.x == 1) {
            ColorConfig tap;
            tap.positions = {SwitchPosition{DirMask::of(Dir::West),
                                            DirMask::of(Dir::Ramp, Dir::East)}};
            ctx.configure_router(kData, tap);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [&](PeContext& ctx, Color) {
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 4.5f);
          ++deliveries;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(deliveries, 2);
}

TEST(Fabric, ControlWaveletAdvancesEveryRouterItTraverses) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kDone = 24;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          ColorConfig ring;
          if (coord.x == 0) {
            ring.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::East), DirMask::of(Dir::Ramp)}};
          } else {
            ring.positions = {
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)},
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::West)}};
          }
          ring.ring_mode = true;
          ctx.configure_router(kData, ring);
          if (coord.x == 0) {
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 1.0f);
            // Data plus trailing control: both routers advance to pos 1.
            ctx.send(kData, dsd(src), color_bit(kData));
            ctx.halt();
          } else {
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [](PeContext& ctx, Color) { ctx.halt(); });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.pe_router(0, 0).position(kData), 1u);
  EXPECT_EQ(fabric.pe_router(1, 0).position(kData), 1u);
  EXPECT_GE(fabric.stats().control_wavelets, 1u);
}

TEST(Fabric, BackpressureStallsUntilAdvance) {
  // The receiver's switch starts in a position that rejects West arrivals;
  // the flit must park and deliver only after a local advance.
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kDone = 26;
  bool delivered = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 2.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ColorConfig wrong_then_right;
            wrong_then_right.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
            ctx.configure_router(kData, wrong_then_right);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
            // Burn enough cycles that the flit arrives (and stalls) before
            // the poke flips the switch.
            const MemSpan scratch = ctx.memory().alloc_f32("scratch", 512);
            ctx.dsd().fmovs_imm(dsd(scratch), 0.0f);
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            // Flip to the accepting position; the parked flit re-dispatches.
            ctx.advance_local(color_bit(kData));
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 2.5f);
          delivered = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(delivered);
  EXPECT_GE(fabric.stats().flits_stalled, 1u);
}

TEST(Fabric, EdgeSendsAreDroppedAndCounted) {
  Fabric fabric(1, 1);
  constexpr Color kData = 0;
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) {
          ctx.configure_router(kData, to_east());
          const MemSpan src = ctx.memory().alloc_f32("src", 3);
          ctx.send(kData, dsd(src));
          ctx.halt();
        },
        nullptr);
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.stats().words_dropped, 3u);
  EXPECT_EQ(fabric.stats().words_delivered, 0u);
}

TEST(Fabric, RunIsDeterministic) {
  auto run_once = [] {
    Fabric fabric(3, 3);
    constexpr Color kData = 0;
    constexpr Color kDone = 24;
    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord](PeContext& ctx) {
            if (coord.x == 0) {
              ctx.configure_router(kData, to_east());
              const MemSpan src = ctx.memory().alloc_f32("src", 8);
              for (u32 i = 0; i < 8; ++i)
                ctx.memory().store(src.offset_words + i,
                                   static_cast<f32>(coord.y * 100 + i));
              ctx.send(kData, dsd(src));
              ctx.halt();
            } else if (coord.x == 1) {
              ctx.configure_router(kData, from_west());
              const MemSpan dst = ctx.memory().alloc_f32("dst", 8);
              ctx.recv(kData, dsd(dst), kDone);
            } else {
              ctx.halt();
            }
          },
          [](PeContext& ctx, Color) {
            // Burn deterministic compute time proportional to the data.
            auto& e = ctx.dsd();
            e.fmuls_imm(Dsd{0, 8, 1}, Dsd{0, 8, 1}, 2.0f);
            ctx.halt();
          });
    });
    const auto result = fabric.run();
    return std::make_pair(result.cycles, fabric.stats().events_processed);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Fabric, CycleLimitStopsRunawayPrograms) {
  Fabric fabric(1, 1);
  constexpr Color kLoop = 24;
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) { ctx.activate(kLoop); },
        [](PeContext& ctx, Color) {
          // Ping-pong forever, each task burning a little time.
          auto& e = ctx.dsd();
          (void)e.fadds_scalar(1.0f, 2.0f);
          ctx.activate(kLoop);
        });
  });
  const auto result = fabric.run(/*max_cycles=*/5000);
  EXPECT_FALSE(result.all_halted);
  EXPECT_TRUE(result.hit_cycle_limit);
}

TEST(Fabric, SendCompletionFiresAfterInjection) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kSent = 24;
  bool sent = false;
  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 16);
            ctx.send(kData, dsd(src), 0, kSent);
          } else {
            ctx.configure_router(kData, from_west());
            const MemSpan dst = ctx.memory().alloc_f32("dst", 16);
            ctx.recv(kData, dsd(dst), kSent);
          }
        },
        [&](PeContext& ctx, Color color) {
          EXPECT_EQ(color, kSent);
          if (ctx.coord().x == 0) sent = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(sent);
}

TEST(Fabric, StatsAggregateCounters) {
  Fabric fabric(2, 2);
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(
        [](PeContext& ctx) {
          const MemSpan a = ctx.memory().alloc_f32("a", 10);
          ctx.dsd().fmovs_imm(dsd(a), 1.0f);
          ctx.dsd().fmuls_imm(dsd(a), dsd(a), 2.0f);
          ctx.halt();
        },
        nullptr);
  });
  EXPECT_TRUE(fabric.run().all_halted);
  const OpCounters total = fabric.total_counters();
  EXPECT_EQ(total.count(Opcode::FMOV), 4u * 10);
  EXPECT_EQ(total.count(Opcode::FMUL), 4u * 10);
  EXPECT_EQ(total.total_flops(), 4u * 10);
  EXPECT_EQ(fabric.pe_counters(0, 0).count(Opcode::FMUL), 10u);
}

TEST(Fabric, InvalidUsagesThrow) {
  Fabric fabric(1, 1);
  EXPECT_THROW(fabric.run(), Error); // run before load
  fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>([](PeContext& ctx) { ctx.halt(); },
                                           nullptr);
  });
  EXPECT_THROW(fabric.load([&](PeCoord) {
    return std::make_unique<LambdaProgram>(nullptr, nullptr);
  }),
               Error); // double load
  EXPECT_TRUE(fabric.run().all_halted);
}

TEST(Fabric, HostAccessorsRejectOutOfRangeCoordinates) {
  Fabric fabric(3, 2);
  EXPECT_THROW(fabric.pe_memory(-1, 0), Error);
  EXPECT_THROW(fabric.pe_memory(3, 0), Error);
  EXPECT_THROW(fabric.pe_memory(0, 2), Error);
  EXPECT_THROW(fabric.pe_router(0, -1), Error);
  EXPECT_THROW(fabric.pe_router(5, 5), Error);
  EXPECT_THROW(fabric.pe_counters(-2, 1), Error);
  EXPECT_NO_THROW(fabric.pe_memory(2, 1));
  EXPECT_NO_THROW(fabric.pe_router(0, 0));
  EXPECT_NO_THROW(fabric.pe_counters(2, 1));
}

TEST(Fabric, RejectedAdvanceReparksWithoutEventOrTraceInflation) {
  // The receiver's switch cycles through two rejecting positions before an
  // accepting one. The advance through a still-rejecting position must
  // re-park the flit directly: exactly one FlitStalled record and stall
  // count, no matter how many advances it takes to release it.
  Fabric fabric(2, 1);
  TraceBuffer trace;
  fabric.set_trace(trace.sink());
  constexpr Color kData = 0;
  constexpr Color kPoke = 25;
  constexpr Color kPoke2 = 26;
  constexpr Color kDone = 27;
  bool delivered = false;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, to_east());
            const MemSpan src = ctx.memory().alloc_f32("src", 1);
            ctx.memory().store(src.offset_words, 3.5f);
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ColorConfig wrong_wrong_right;
            wrong_wrong_right.positions = {
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)}};
            ctx.configure_router(kData, wrong_wrong_right);
            const MemSpan dst = ctx.memory().alloc_f32("dst", 1);
            ctx.recv(kData, dsd(dst), kDone);
            // Let the flit arrive (and stall) before the pokes advance.
            const MemSpan scratch = ctx.memory().alloc_f32("scratch", 512);
            ctx.dsd().fmovs_imm(dsd(scratch), 0.0f);
            ctx.activate(kPoke);
          }
        },
        [&](PeContext& ctx, Color color) {
          if (color == kPoke) {
            ctx.advance_local(color_bit(kData)); // position 1: still rejects
            ctx.activate(kPoke2);
            return;
          }
          if (color == kPoke2) {
            ctx.advance_local(color_bit(kData)); // position 2: accepts
            return;
          }
          EXPECT_EQ(color, kDone);
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 3.5f);
          delivered = true;
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(fabric.stats().flits_stalled, 1u);
  EXPECT_EQ(trace.count(TraceEvent::FlitStalled), 1u);
}

TEST(Fabric, LargerMessagesTakeLongerOnTheLink) {
  auto timed_transfer = [](u32 words) {
    Fabric fabric(2, 1);
    constexpr Color kData = 0;
    constexpr Color kDone = 24;
    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord, words](PeContext& ctx) {
            if (coord.x == 0) {
              ctx.configure_router(kData, to_east());
              const MemSpan src = ctx.memory().alloc_f32("src", words);
              ctx.send(kData, dsd(src));
              ctx.halt();
            } else {
              ctx.configure_router(kData, from_west());
              const MemSpan dst = ctx.memory().alloc_f32("dst", words);
              ctx.recv(kData, dsd(dst), kDone);
            }
          },
          [](PeContext& ctx, Color) { ctx.halt(); });
    });
    return fabric.run().cycles;
  };
  EXPECT_GT(timed_transfer(256), timed_transfer(8));
}

} // namespace
} // namespace fvdf::wse
