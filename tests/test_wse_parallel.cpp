// The parallel execution engine's contract: the worker-thread count is
// invisible. Solutions, statistics and trace streams must be bitwise
// identical at any `sim_threads`, including repeated runs, and
// backpressure must work across shard boundaries exactly as within one.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/session.hpp"
#include "wse/fabric.hpp"
#include "wse/shard_layout.hpp"
#include "wse/trace.hpp"

namespace fvdf::wse {
namespace {

class LambdaProgram final : public PeProgram {
public:
  using StartFn = std::function<void(PeContext&)>;
  using TaskFn = std::function<void(PeContext&, Color)>;
  LambdaProgram(StartFn start, TaskFn task)
      : start_(std::move(start)), task_(std::move(task)) {}

  void on_start(PeContext& ctx) override {
    if (start_) start_(ctx);
  }
  void on_task(PeContext& ctx, Color color) override {
    if (task_) task_(ctx, color);
  }

private:
  StartFn start_;
  TaskFn task_;
};

bool same_bits(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

core::DataflowResult solve_with_threads(u32 threads) {
  // 10x12 -> a (7,1) tile grid under the cost model; every north-south
  // halo exchange near a tile boundary crosses it, so this exercises the
  // merge barrier hard.
  const auto problem = FlowProblem::homogeneous_column(10, 12, 6);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 25;
  config.sim_threads = threads;
  return core::solve_dataflow(problem, config);
}

TEST(ParallelFabric, SolveIsBitwiseIdenticalAcrossThreadCounts) {
  const auto reference = solve_with_threads(1);
  // Odd counts leave workers with unequal shard ranges; 32 exceeds the
  // shard count (7) and must be clamped invisibly.
  std::vector<u32> counts = {2, 3, 4, 7, 32};
  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);
  for (u32 threads : counts) {
    const auto result = solve_with_threads(threads);
    EXPECT_TRUE(same_bits(result.delta, reference.delta))
        << "delta differs at sim_threads=" << threads;
    EXPECT_TRUE(same_bits(result.pressure, reference.pressure))
        << "pressure differs at sim_threads=" << threads;
    EXPECT_EQ(result.iterations, reference.iterations);
    EXPECT_EQ(result.device_cycles, reference.device_cycles);
    EXPECT_TRUE(result.fabric == reference.fabric)
        << "FabricStats differ at sim_threads=" << threads;
  }
}

TEST(ParallelFabric, RepeatedRunsAreBitwiseIdentical) {
  const auto a = solve_with_threads(4);
  const auto b = solve_with_threads(4);
  EXPECT_TRUE(same_bits(a.delta, b.delta));
  EXPECT_EQ(a.device_cycles, b.device_cycles);
  EXPECT_TRUE(a.fabric == b.fabric);
}

// A 3x4 fabric (forced to 4 shards: one per row) where rows 0 and 2 send
// column-dependent payloads south across shard boundaries while burning
// column-dependent compute time — plenty of same-cycle cross-shard events.
void load_cross_shard_program(Fabric& fabric) {
  constexpr Color kData = 0;
  constexpr Color kDone = 24;
  fabric.load([](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          const bool sender = coord.y == 0 || coord.y == 2;
          const u32 words = 4 + static_cast<u32>(coord.x) * 3;
          if (sender) {
            ColorConfig south;
            south.positions = {SwitchPosition{DirMask::of(Dir::Ramp),
                                              DirMask::of(Dir::South)}};
            ctx.configure_router(kData, south);
            const MemSpan src = ctx.memory().alloc_f32("src", words);
            for (u32 i = 0; i < words; ++i)
              ctx.memory().store(src.offset_words + i,
                                 static_cast<f32>(coord.x * 100 + i));
            const MemSpan burn = ctx.memory().alloc_f32("burn", 64);
            for (i64 n = 0; n <= coord.x; ++n)
              ctx.dsd().fmovs_imm(dsd(burn), static_cast<f32>(n));
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ColorConfig north;
            north.positions = {SwitchPosition{DirMask::of(Dir::North),
                                              DirMask::of(Dir::Ramp)}};
            ctx.configure_router(kData, north);
            const MemSpan dst = ctx.memory().alloc_f32("dst", words);
            ctx.recv(kData, dsd(dst), kDone);
          }
        },
        [](PeContext& ctx, Color) { ctx.halt(); });
  });
}

TEST(ParallelFabric, TraceStreamIsIdenticalAcrossThreadCounts) {
  auto traced_run = [](u32 threads) {
    Fabric fabric(3, 4, {}, {}, ShardGrid{4, 1});
    EXPECT_EQ(fabric.shard_count(), 4u);
    fabric.set_threads(threads);
    TraceBuffer buffer;
    fabric.set_trace(buffer.sink());
    load_cross_shard_program(fabric);
    EXPECT_TRUE(fabric.run().all_halted);
    return buffer;
  };
  const TraceBuffer reference = traced_run(1);
  EXPECT_GT(reference.total(), 0u);
  for (u32 threads : {2u, 4u}) {
    const TraceBuffer buffer = traced_run(threads);
    // records() returns a snapshot copy; take it once so the element
    // references below don't dangle off a per-iteration temporary.
    const std::vector<TraceRecord> got_records = buffer.records();
    const std::vector<TraceRecord> want_records = reference.records();
    ASSERT_EQ(got_records.size(), want_records.size())
        << "trace length differs at threads=" << threads;
    for (std::size_t i = 0; i < got_records.size(); ++i) {
      const TraceRecord& got = got_records[i];
      const TraceRecord& want = want_records[i];
      ASSERT_TRUE(got.event == want.event && got.cycles == want.cycles &&
                  got.at == want.at && got.color == want.color &&
                  got.words == want.words)
          << "trace record " << i << " differs at threads=" << threads;
    }
  }
}

TEST(ParallelFabric, BackpressureStallsAcrossShardBoundary) {
  // Sender and receiver sit in different shards (1x2 fabric forced to one
  // shard per row). The data flit crosses the boundary, parks on the
  // receiver's rejecting switch position, and is released by a later
  // control wavelet that also crossed the boundary.
  auto run_once = [](u32 threads) {
    Fabric fabric(1, 2, {}, {}, ShardGrid{2, 1});
    EXPECT_EQ(fabric.shard_count(), 2u);
    fabric.set_threads(threads);
    constexpr Color kData = 0;
    constexpr Color kCtl = 1;
    constexpr Color kDone = 24;
    bool delivered = false;

    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord](PeContext& ctx) {
            if (coord.y == 0) {
              ColorConfig south;
              south.positions = {SwitchPosition{DirMask::of(Dir::Ramp),
                                                DirMask::of(Dir::South)}};
              ctx.configure_router(kData, south);
              ctx.configure_router(kCtl, south);
              const MemSpan src = ctx.memory().alloc_f32("src", 3);
              for (u32 i = 0; i < 3; ++i)
                ctx.memory().store(src.offset_words + i, static_cast<f32>(7 + i));
              ctx.send(kData, dsd(src));
              // Trails the data; advances kData's switch at the receiver.
              ctx.send_control(kCtl, color_bit(kData));
              ctx.halt();
            } else {
              ColorConfig wrong_then_right;
              wrong_then_right.positions = {
                  SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::South)},
                  SwitchPosition{DirMask::of(Dir::North), DirMask::of(Dir::Ramp)}};
              ctx.configure_router(kData, wrong_then_right);
              ColorConfig from_north;
              from_north.positions = {SwitchPosition{DirMask::of(Dir::North),
                                                     DirMask::of(Dir::Ramp)}};
              ctx.configure_router(kCtl, from_north);
              const MemSpan dst = ctx.memory().alloc_f32("dst", 3);
              ctx.recv(kData, dsd(dst), kDone);
            }
          },
          [&](PeContext& ctx, Color color) {
            EXPECT_EQ(color, kDone);
            for (u32 i = 0; i < 3; ++i)
              EXPECT_FLOAT_EQ(ctx.memory().load(i), static_cast<f32>(7 + i));
            delivered = true;
            ctx.halt();
          });
    });
    const auto result = fabric.run();
    EXPECT_TRUE(result.all_halted);
    EXPECT_TRUE(delivered);
    EXPECT_GE(fabric.stats().flits_stalled, 1u);
    return std::make_pair(result.cycles, fabric.stats());
  };
  const auto serial = run_once(1);
  const auto parallel = run_once(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_TRUE(serial.second == parallel.second);
}

TEST(ParallelFabric, LocalOnlyWorkloadFinishesInOneRound) {
  // No PE ever sends: every shard's window opens past its whole heap on
  // the first round (the adaptive fast path — no merge, no rescan), so the
  // run drains in a single round at any thread count.
  auto run = [](u32 threads) {
    Fabric fabric(2, 6, {}, {}, ShardGrid{6, 1});
    EXPECT_EQ(fabric.shard_count(), 6u);
    fabric.set_threads(threads);
    fabric.load([](PeCoord) {
      return std::make_unique<LambdaProgram>(
          [](PeContext& ctx) {
            const MemSpan buf = ctx.memory().alloc_f32("buf", 16);
            ctx.dsd().fmovs_imm(dsd(buf), 1.0f);
            ctx.halt();
          },
          nullptr);
    });
    EXPECT_TRUE(fabric.run().all_halted);
    return std::make_pair(fabric.last_run_rounds(), fabric.stats());
  };
  const auto serial = run(1);
  EXPECT_EQ(serial.first, 1u);
  for (u32 threads : {3u, 6u, 8u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads=" << threads;
    EXPECT_TRUE(parallel.second == serial.second) << "threads=" << threads;
  }
}

TEST(ParallelFabric, PartitionNeverCreatesEmptyShards) {
  // Property sweep over the cost model: every band is non-empty, the
  // splits tile the fabric exactly, and the tile count stays within the
  // amortization budget — so no shard ever joins the window barrier with
  // nothing to do.
  for (i64 w : {1, 2, 3, 7, 10, 16, 40, 128}) {
    for (i64 h : {1, 2, 5, 11, 16, 33, 128}) {
      const ShardLayout layout = choose_shard_layout(w, h);
      const i64 budget =
          std::clamp<i64>(w * h / kMinTilePes, 1, static_cast<i64>(kMaxShards));
      EXPECT_LE(static_cast<i64>(layout.tiles()), budget) << w << "x" << h;
      ASSERT_EQ(layout.row_splits.size(), layout.tile_rows + 1u);
      ASSERT_EQ(layout.col_splits.size(), layout.tile_cols + 1u);
      EXPECT_EQ(layout.row_splits.front(), 0);
      EXPECT_EQ(layout.row_splits.back(), h);
      EXPECT_EQ(layout.col_splits.front(), 0);
      EXPECT_EQ(layout.col_splits.back(), w);
      for (u32 r = 0; r < layout.tile_rows; ++r)
        EXPECT_LT(layout.row_splits[r], layout.row_splits[r + 1])
            << w << "x" << h;
      for (u32 c = 0; c < layout.tile_cols; ++c)
        EXPECT_LT(layout.col_splits[c], layout.col_splits[c + 1])
            << w << "x" << h;
    }
  }
  // Worked examples: square fabrics get square-ish tiles, narrow fabrics
  // degenerate to strips, tiny fabrics collapse to a single serial shard.
  EXPECT_EQ(choose_shard_layout(128, 128).tile_rows, 4u);
  EXPECT_EQ(choose_shard_layout(128, 128).tile_cols, 4u);
  EXPECT_EQ(choose_shard_layout(8, 8).tile_rows, 2u);
  EXPECT_EQ(choose_shard_layout(8, 8).tile_cols, 2u);
  EXPECT_EQ(choose_shard_layout(4, 4).tiles(), 1u);
  EXPECT_EQ(choose_shard_layout(1, 40).tile_rows, 2u);
  EXPECT_EQ(choose_shard_layout(1, 40).tile_cols, 1u);
  EXPECT_EQ(choose_shard_layout(40, 1).tile_rows, 1u);
  EXPECT_EQ(choose_shard_layout(40, 1).tile_cols, 2u);
  // The forced 1D row-strip layout ({0, 1}) never creates empty strips
  // either: the free dimension takes the budget clamped to the extent.
  for (i64 h : {1, 2, 3, 5, 7, 11, 15, 16, 17, 33, 100}) {
    Fabric fabric(2, h, {}, {}, ShardGrid{0, 1});
    const i64 budget =
        std::clamp<i64>(2 * h / kMinTilePes, 1, static_cast<i64>(kMaxShards));
    EXPECT_EQ(fabric.shard_count(),
              static_cast<u32>(std::min<i64>(budget, h)))
        << "height=" << h;
    EXPECT_LE(fabric.shard_count(), static_cast<u32>(h)) << "height=" << h;
  }
}

// The engine's central promise after the 2D generalization: results are
// bitwise identical under ANY shard layout — 2D tiles, 1D strips, serial —
// not just any thread count. The (t, emitting PE, emission index) event
// order plus sound per-boundary horizons make the round schedule's shape
// invisible.
core::DataflowResult solve_with_layout(ShardGrid grid, u32 threads,
                                       core::SimEngine engine) {
  // Non-square, non-multiple extents: 11x7x5 forces ragged tile rects.
  const auto problem = FlowProblem::quarter_five_spot(11, 7, 5, 9, 0.8);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 18;
  config.sim_threads = threads;
  config.shard_grid = grid;
  config.engine = engine;
  return core::solve_dataflow(problem, config);
}

TEST(ParallelFabric, SolveIsBitwiseIdenticalAcrossShardLayouts) {
  for (core::SimEngine engine :
       {core::SimEngine::Bytecode, core::SimEngine::Legacy}) {
    const auto serial = solve_with_layout(ShardGrid{1, 1}, 1, engine);
    const ShardGrid grids[] = {
        {},     // cost model (the default 2D choice)
        {0, 1}, // 1D row strips (the legacy layout)
        {2, 2}, {3, 1}, {1, 3}, {2, 3},
    };
    for (const ShardGrid& grid : grids) {
      for (u32 threads : {1u, 2u, 3u, 4u, 7u, 8u}) {
        const auto result = solve_with_layout(grid, threads, engine);
        EXPECT_TRUE(same_bits(result.delta, serial.delta))
            << "delta differs: grid {" << grid.rows << "," << grid.cols
            << "} threads=" << threads << " engine=" << static_cast<int>(engine);
        EXPECT_TRUE(same_bits(result.pressure, serial.pressure));
        EXPECT_EQ(result.iterations, serial.iterations);
        EXPECT_EQ(result.device_cycles, serial.device_cycles);
        EXPECT_TRUE(result.fabric == serial.fabric)
            << "FabricStats differ: grid {" << grid.rows << "," << grid.cols
            << "} threads=" << threads;
      }
    }
  }
}

TEST(ParallelFabric, DegenerateFabricsCollapseToSerial) {
  // Single-row, single-column and single-PE fabrics fall under the
  // kMinTilePes budget, so the cost model hands back one shard and the
  // engine takes the serial fast path — while still matching a forced
  // multi-strip run bit for bit where one is possible.
  for (auto [w, h] : {std::pair<i64, i64>{6, 1}, {1, 6}, {1, 1}}) {
    Fabric fabric(static_cast<i64>(w), static_cast<i64>(h));
    EXPECT_EQ(fabric.shard_count(), 1u) << w << "x" << h;
  }
  const auto problem = FlowProblem::homogeneous_column(1, 8, 4);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 10;
  config.sim_threads = 1;
  const auto serial = core::solve_dataflow(problem, config);
  config.shard_grid = ShardGrid{8, 1};
  config.sim_threads = 4;
  const auto sharded = core::solve_dataflow(problem, config);
  EXPECT_TRUE(same_bits(sharded.delta, serial.delta));
  EXPECT_EQ(sharded.device_cycles, serial.device_cycles);
  EXPECT_TRUE(sharded.fabric == serial.fabric);
}

// ---- host profiler (telemetry/host_profiler.hpp) ----------------------
//
// The profiler's whole contract is "observe, never perturb": attaching it
// must leave solve results, ledgers and the deterministic telemetry bundle
// bitwise identical at every thread count, while its own timelines must
// partition each worker's wall clock exactly.

struct InstrumentedSolve {
  core::DataflowResult result;
  std::string metrics, trace, progress;
};

InstrumentedSolve solve_instrumented(u32 threads,
                                     telemetry::HostProfiler* profiler) {
  const auto problem = FlowProblem::homogeneous_column(10, 12, 6);
  telemetry::TelemetryConfig tconfig;
  tconfig.level = telemetry::Level::Trace;
  telemetry::Session session(tconfig);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 25;
  config.sim_threads = threads;
  config.telemetry = &session;
  config.host_profiler = profiler;
  InstrumentedSolve out;
  out.result = core::solve_dataflow(problem, config);
  out.metrics = session.metrics_json();
  out.trace = session.chrome_trace_json();
  out.progress = session.progress_json();
  return out;
}

TEST(HostProfiler, AttachingNeverPerturbsResultsOrTelemetry) {
  // Worker pool park/wake and the sense-reversing barrier run with the
  // profiler's timeline hooks live at 1 (serial path), even, odd and
  // oversubscribed thread counts; everything observable must match the
  // unprofiled threads=1 run bit for bit.
  const InstrumentedSolve reference = solve_instrumented(1, nullptr);
  for (u32 threads : {1u, 2u, 4u, 7u}) {
    telemetry::HostProfiler profiler;
    const InstrumentedSolve profiled = solve_instrumented(threads, &profiler);
    EXPECT_TRUE(same_bits(profiled.result.delta, reference.result.delta))
        << "delta differs with profiler at threads=" << threads;
    EXPECT_TRUE(same_bits(profiled.result.pressure, reference.result.pressure))
        << "pressure differs with profiler at threads=" << threads;
    EXPECT_EQ(profiled.result.iterations, reference.result.iterations);
    EXPECT_EQ(profiled.result.device_cycles, reference.result.device_cycles);
    EXPECT_TRUE(profiled.result.fabric == reference.result.fabric)
        << "FabricStats differ with profiler at threads=" << threads;
    EXPECT_EQ(profiled.metrics, reference.metrics)
        << "metrics.json differs with profiler at threads=" << threads;
    EXPECT_EQ(profiled.trace, reference.trace)
        << "trace.json differs with profiler at threads=" << threads;
    EXPECT_EQ(profiled.progress, reference.progress)
        << "progress.json differs with profiler at threads=" << threads;
    if (Fabric::host_profiling_compiled()) {
      EXPECT_TRUE(profiler.captured()) << "threads=" << threads;
      EXPECT_GT(profiler.rounds(), 0u);
    } else {
      EXPECT_FALSE(profiler.captured());
    }
  }
}

TEST(HostProfiler, TimelinesPartitionEachWorkersWallClock) {
  if (!Fabric::host_profiling_compiled())
    GTEST_SKIP() << "built with -DFVDF_TELEMETRY=OFF";
  telemetry::HostProfiler profiler;
  solve_instrumented(4, &profiler);
  ASSERT_TRUE(profiler.captured());
  ASSERT_GT(profiler.workers(), 1u);
  ASSERT_GT(profiler.shards(), 1u);
  const f64 wall = profiler.wall_seconds();
  ASSERT_GT(wall, 0.0);

  for (u32 w = 0; w < profiler.workers(); ++w) {
    const auto& timeline = profiler.worker_timeline(w);
    // Per-state totals account for the full wall interval exactly (they
    // stay exact even past the interval-detail cap).
    f64 accounted = 0;
    for (f64 seconds : timeline.totals()) accounted += seconds;
    EXPECT_NEAR(accounted, wall, 1e-6) << "worker " << w;
    // Recorded intervals are sorted, non-overlapping and gap-free from 0.
    f64 cursor = 0;
    for (const auto& interval : timeline.intervals()) {
      EXPECT_DOUBLE_EQ(interval.begin, cursor)
          << "gap or overlap at worker " << w;
      EXPECT_GT(interval.end, interval.begin) << "worker " << w;
      cursor = interval.end;
    }
    if (timeline.dropped() == 0) {
      EXPECT_NEAR(cursor, wall, 1e-6);
    }
  }

  // Stall attribution: every round classified every shard exactly once.
  for (u32 s = 0; s < profiler.shards(); ++s)
    EXPECT_EQ(profiler.shard_stats(s).rounds_total(), profiler.rounds())
        << "shard " << s;

  // Critical-path bound sanity: exactly 1 at one thread, monotone in the
  // thread ladder, never past the unbounded limit.
  EXPECT_NEAR(profiler.max_speedup_bound(1), 1.0, 1e-9);
  EXPECT_NEAR(profiler.max_event_speedup_bound(1), 1.0, 1e-9);
  f64 previous = 0;
  for (u32 threads : telemetry::kBoundThreads) {
    const f64 bound = profiler.max_speedup_bound(threads);
    EXPECT_GE(bound, 1.0) << "threads=" << threads;
    EXPECT_GE(bound, previous - 1e-12) << "threads=" << threads;
    EXPECT_LE(bound, profiler.max_speedup_unbounded() + 1e-9)
        << "threads=" << threads;
    previous = bound;
  }
}

TEST(HostProfiler, SurvivesReuseAcrossRuns) {
  // One profiler handed to back-to-back solves (the fabric_profile --reps
  // pattern): begin_run must re-arm cleanly after a parked pool wakes, and
  // the last run's capture must stand on its own.
  if (!Fabric::host_profiling_compiled())
    GTEST_SKIP() << "built with -DFVDF_TELEMETRY=OFF";
  telemetry::HostProfiler profiler;
  const InstrumentedSolve first = solve_instrumented(7, &profiler);
  const u64 first_rounds = profiler.rounds();
  ASSERT_GT(first_rounds, 0u);
  const InstrumentedSolve second = solve_instrumented(7, &profiler);
  EXPECT_TRUE(same_bits(first.result.delta, second.result.delta));
  EXPECT_EQ(profiler.rounds(), first_rounds);
  for (u32 s = 0; s < profiler.shards(); ++s)
    EXPECT_EQ(profiler.shard_stats(s).rounds_total(), profiler.rounds());
  // Export stays self-consistent after reuse.
  const std::string json = profiler.host_profile_json();
  EXPECT_NE(json.find("fvdf.telemetry.host_profile/2"), std::string::npos);
}

TEST(ParallelFabric, ShardCountIsGeometryNotThreads) {
  Fabric tall(1, 40);
  EXPECT_EQ(tall.shard_count(), 2u); // budget 40/16 -> two row strips
  tall.set_threads(7);
  EXPECT_EQ(tall.shard_count(), 2u);
  EXPECT_EQ(tall.threads(), 7u);

  Fabric flat(40, 1);
  EXPECT_EQ(flat.shard_count(), 2u); // one row -> two column strips

  Fabric mid(4, 6);
  EXPECT_EQ(mid.shard_count(), 1u); // 24 PEs < 2*kMinTilePes -> serial

  Fabric forced(3, 4, {}, {}, ShardGrid{4, 1});
  EXPECT_EQ(forced.shard_count(), 4u); // explicit override beats the budget

  Fabric any(2, 2);
  any.set_threads(0); // hardware concurrency
  EXPECT_GE(any.threads(), 1u);
}

} // namespace
} // namespace fvdf::wse
