// Telemetry subsystem tests: deterministic merging across simulator
// thread counts, phase-span attribution on real CG/Chebyshev solves,
// Chrome-trace/metrics JSON validity, heatmap + link-CSV stability, the
// metrics registry, and TraceBuffer's concurrent-append contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>

#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/chebyshev.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/session.hpp"
#include "wse/trace.hpp"

// Attribution and accounting tests need the fabric hooks compiled in;
// under -DFVDF_TELEMETRY=OFF (which defines FVDF_TELEMETRY_DISABLED via
// fvdf_wse) the collector stays empty by design, so those tests skip.
// Determinism, format and unit tests still run in both configurations.
#ifdef FVDF_TELEMETRY_DISABLED
#define FVDF_REQUIRE_TELEMETRY() \
  GTEST_SKIP() << "fabric telemetry hooks compiled out (FVDF_TELEMETRY=OFF)"
#else
#define FVDF_REQUIRE_TELEMETRY() (void)0
#endif

namespace fvdf::telemetry {
namespace {

struct Profiled {
  core::DataflowResult result;
  std::string metrics;
  std::string trace;
  std::string progress;
  std::string links;
};

// One instrumented CG solve on a quarter-five-spot problem; every export
// captured as bytes so runs can be compared verbatim.
Profiled profiled_solve(u32 sim_threads, Level level = Level::Trace) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 4, /*seed=*/11);
  Session session({level});
  core::DataflowConfig config;
  config.tolerance = 1e-10f;
  config.max_iterations = 200;
  config.sim_threads = sim_threads;
  config.telemetry = &session;
  Profiled out;
  out.result = core::solve_dataflow(problem, config);
  out.metrics = session.metrics_json();
  out.trace = session.chrome_trace_json();
  out.progress = session.progress_json();
  out.links = link_csv(session.collector());
  return out;
}

// --- determinism across --sim-threads -------------------------------------

TEST(TelemetryDeterminism, IdenticalBytesAcrossSimThreads) {
  const Profiled reference = profiled_solve(1);
  for (const u32 threads : {2u, 8u}) {
    const Profiled other = profiled_solve(threads);
    EXPECT_EQ(reference.metrics, other.metrics) << "sim_threads=" << threads;
    EXPECT_EQ(reference.trace, other.trace) << "sim_threads=" << threads;
    EXPECT_EQ(reference.progress, other.progress) << "sim_threads=" << threads;
    EXPECT_EQ(reference.links, other.links) << "sim_threads=" << threads;
  }
}

TEST(TelemetryDeterminism, RepeatedRunIsByteStable) {
  const Profiled a = profiled_solve(2);
  const Profiled b = profiled_solve(2);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.links, b.links);
}

// --- phase spans on a real solve ------------------------------------------

TEST(TelemetryPhases, ReferencePeCyclesSumToTotal) {
  FVDF_REQUIRE_TELEMETRY();
  const auto problem = FlowProblem::homogeneous_column(5, 4, 3);
  Session session({Level::Metrics});
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 8;
  config.telemetry = &session;
  const auto result = core::solve_dataflow(problem, config);

  const auto phases = session.reference_phase_cycles();
  f64 sum = 0;
  for (const f64 cycles : phases) sum += cycles;
  EXPECT_NEAR(sum, result.device_cycles, result.device_cycles * 1e-12);

  // A CG solve visits every Table-II phase at least once.
  EXPECT_GT(phases[static_cast<u32>(Phase::Halo)], 0.0);
  EXPECT_GT(phases[static_cast<u32>(Phase::Flux)], 0.0);
  EXPECT_GT(phases[static_cast<u32>(Phase::LocalDot)], 0.0);
  EXPECT_GT(phases[static_cast<u32>(Phase::AllReduce)], 0.0);
  EXPECT_GT(phases[static_cast<u32>(Phase::Axpy)], 0.0);
}

TEST(TelemetryPhases, SpansAreContiguousPerPe) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 2);
  Session session({Level::Metrics});
  core::DataflowConfig config;
  config.max_iterations = 5;
  config.telemetry = &session;
  core::solve_dataflow(problem, config);

  const FabricCollector& collector = session.collector();
  i64 current_pe = -1;
  f64 cursor = 0;
  for (const PhaseSpan& span : collector.spans()) {
    if (span.pe != current_pe) {
      // The previous PE's timeline must have reached the end of the run.
      if (current_pe >= 0) {
        EXPECT_DOUBLE_EQ(cursor, collector.total_cycles());
      }
      current_pe = span.pe;
      EXPECT_DOUBLE_EQ(span.begin, 0.0); // every timeline starts at cycle 0
    } else {
      EXPECT_DOUBLE_EQ(span.begin, cursor); // no gap, no overlap
    }
    EXPECT_LE(span.begin, span.end);
    cursor = span.end;
  }
  if (current_pe >= 0) {
    EXPECT_DOUBLE_EQ(cursor, collector.total_cycles());
  }
}

TEST(TelemetryPhases, ResidualHistoryMatchesIterations) {
  FVDF_REQUIRE_TELEMETRY();
  const auto problem = FlowProblem::homogeneous_column(4, 4, 3);
  Session session({Level::Metrics});
  core::DataflowConfig config;
  config.tolerance = 1e-10f;
  config.max_iterations = 300;
  config.telemetry = &session;
  const auto result = core::solve_dataflow(problem, config);
  ASSERT_TRUE(result.converged);

  // One sample for k = 0 plus one per completed iteration; the last one
  // crossed the tolerance.
  ASSERT_EQ(result.residual_history.size(), result.iterations + 1);
  EXPECT_LT(result.residual_history.back(), 1e-10);
  EXPECT_GT(result.residual_history.front(), result.residual_history.back());
}

TEST(TelemetryPhases, ChebyshevSolveIsAttributedToo) {
  FVDF_REQUIRE_TELEMETRY();
  const auto problem = FlowProblem::homogeneous_column(5, 5, 3);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  Session session({Level::Metrics});
  core::ChebyshevDeviceConfig config;
  config.bounds = estimate_spectral_bounds<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); },
      static_cast<std::size_t>(sys.cell_count()));
  config.tolerance = 1e-8f;
  config.max_iterations = 2000;
  config.check_every = 8;
  config.telemetry = &session;
  const auto result = core::solve_dataflow_chebyshev(problem, config);
  ASSERT_TRUE(result.converged);

  const auto phases = session.reference_phase_cycles();
  f64 sum = 0;
  for (const f64 cycles : phases) sum += cycles;
  EXPECT_NEAR(sum, result.device_cycles, result.device_cycles * 1e-12);
  EXPECT_GT(phases[static_cast<u32>(Phase::Halo)], 0.0);
  EXPECT_GT(phases[static_cast<u32>(Phase::Flux)], 0.0);
  // Probes every 8 iterations: the all-reduce shows up but no longer
  // dominates the way it does for CG (the design point of the extension).
  EXPECT_GT(phases[static_cast<u32>(Phase::AllReduce)], 0.0);
  EXPECT_FALSE(result.residual_history.empty());
}

// --- export formats -------------------------------------------------------

TEST(TelemetryExports, JsonDocumentsAreValid) {
  const Profiled run = profiled_solve(1);
  std::string error;
  EXPECT_TRUE(validate_json(run.metrics, &error)) << error;
  EXPECT_TRUE(validate_json(run.trace, &error)) << error;
  EXPECT_TRUE(validate_json(run.progress, &error)) << error;
}

TEST(TelemetryExports, ChromeTraceHasRequiredStructure) {
  FVDF_REQUIRE_TELEMETRY();
  const Profiled run = profiled_solve(1);
  // Top-level container with the trace-event array and both process
  // metadata records (phase tracks + raw fabric events).
  EXPECT_NE(run.trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(run.trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ph\":\"i\""), std::string::npos); // Level::Trace
  EXPECT_NE(run.trace.find("fabric phases"), std::string::npos);
  EXPECT_NE(run.trace.find("fabric events"), std::string::npos);
  // Every phase name that can appear is a known track label.
  EXPECT_NE(run.trace.find("\"name\":\"halo\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"name\":\"all_reduce\""), std::string::npos);
}

TEST(TelemetryExports, MetricsLevelSkipsRawEvents) {
  FVDF_REQUIRE_TELEMETRY();
  const Profiled run = profiled_solve(1, Level::Metrics);
  EXPECT_EQ(run.trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TelemetryExports, LinkCsvAccountsForEveryWordHop) {
  FVDF_REQUIRE_TELEMETRY();
  const auto problem = FlowProblem::homogeneous_column(6, 4, 3);
  Session session({Level::Metrics});
  core::DataflowConfig config;
  config.max_iterations = 6;
  config.telemetry = &session;
  const auto result = core::solve_dataflow(problem, config);

  // Cardinal-link words summed over PEs equal the engine's word-hop
  // count; the CSV has exactly one row per (PE, link slot) plus a header.
  u64 fabric_words = 0;
  for (const PeActivity& pe : session.collector().activities())
    fabric_words += pe.fabric_tx_words();
  EXPECT_EQ(fabric_words, result.fabric.word_hops);

  const std::string csv = link_csv(session.collector());
  const auto rows = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, 1 + 6u * 4u * kPeLinks);
  EXPECT_EQ(csv.rfind("x,y,link,words,messages\n", 0), 0u);
}

TEST(TelemetryExports, HeatmapsMatchActivityTable) {
  const auto problem = FlowProblem::homogeneous_column(5, 3, 2);
  Session session({Level::Metrics});
  core::DataflowConfig config;
  config.max_iterations = 4;
  config.telemetry = &session;
  core::solve_dataflow(problem, config);

  const FabricCollector& collector = session.collector();
  const HeatmapBundle maps = build_heatmaps(collector);
  ASSERT_EQ(maps.traffic_words.nx, 5);
  ASSERT_EQ(maps.traffic_words.ny, 3);
  for (i64 y = 0; y < 3; ++y) {
    for (i64 x = 0; x < 5; ++x) {
      const PeActivity& pe = session.collector().activities()
          [static_cast<std::size_t>(y * 5 + x)];
      EXPECT_DOUBLE_EQ(maps.traffic_words.at(x, y),
                       static_cast<f64>(pe.fabric_tx_words()));
      EXPECT_DOUBLE_EQ(maps.delivered_words.at(x, y),
                       static_cast<f64>(pe.rx_words));
      EXPECT_DOUBLE_EQ(maps.occupancy.at(x, y),
                       pe.busy_cycles / collector.total_cycles());
    }
  }
}

// --- JSON validator -------------------------------------------------------

TEST(TelemetryJson, ValidatorAcceptsAndRejects) {
  std::string error;
  EXPECT_TRUE(validate_json("{}", &error));
  EXPECT_TRUE(validate_json("[1,2.5e-3,\"x\",null,true,{\"k\":[]}]", &error));
  EXPECT_FALSE(validate_json("", &error));
  EXPECT_FALSE(validate_json("{", &error));
  EXPECT_FALSE(validate_json("{\"a\":1,}", &error));
  EXPECT_FALSE(validate_json("[1] trailing", &error));
  EXPECT_FALSE(validate_json("{'a':1}", &error));
  EXPECT_FALSE(validate_json("[01]", &error));
}

TEST(TelemetryJson, WriterRoundTripsThroughValidator) {
  JsonWriter w;
  w.begin_object();
  w.kv("text", "quote\" slash\\ newline\n tab\t");
  w.kv("inf", std::numeric_limits<f64>::infinity()); // serialized as null
  w.kv("num", 0.1);
  w.key("list").begin_array();
  w.value(static_cast<u64>(1));
  w.value(false);
  w.end_array();
  w.end_object();
  const std::string text = w.take();
  std::string error;
  EXPECT_TRUE(validate_json(text, &error)) << text << "\n" << error;
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos);
}

// --- metrics registry -----------------------------------------------------

TEST(TelemetryRegistry, ShardedCountersMergeDeterministically) {
  MetricsRegistry registry(4);
  const u32 flits = registry.counter("flits");
  const u32 again = registry.counter("flits");
  EXPECT_EQ(flits, again); // idempotent registration
  const u32 lat = registry.histogram("latency");

  for (u32 shard = 0; shard < 4; ++shard) {
    registry.add(shard, flits, shard + 1);
    registry.observe(shard, lat, static_cast<f64>(10 * (shard + 1)));
  }
  EXPECT_EQ(registry.counter_value(flits), 1u + 2 + 3 + 4);
  const StreamingHistogram merged = registry.histogram_value(lat);
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.min(), 10.0);
  EXPECT_DOUBLE_EQ(merged.max(), 40.0);

  const u32 g = registry.gauge("fill");
  registry.set(g, 0.75);
  EXPECT_DOUBLE_EQ(registry.gauge_value(g), 0.75);

  JsonWriter w;
  registry.write_json(w);
  std::string error;
  EXPECT_TRUE(validate_json(w.take(), &error)) << error;
}

// --- collector unit behavior ----------------------------------------------

TEST(TelemetryCollector, PeStrideSamplingKeepsReferencePe)
{
  SamplingConfig sampling;
  sampling.pe_stride = 3;
  FabricCollector collector(Level::Metrics, sampling);
  collector.bind(7, 7, 1);
  EXPECT_TRUE(collector.samples_pe(0));              // (0,0) always
  EXPECT_TRUE(collector.samples_pe(3));              // (3,0)
  EXPECT_FALSE(collector.samples_pe(1));             // (1,0)
  EXPECT_TRUE(collector.samples_pe(3 * 7 + 3));      // (3,3)
  EXPECT_FALSE(collector.samples_pe(3 * 7 + 4));     // (4,3)
}

TEST(TelemetryCollector, MarksCoalesceAndClampIntoSpans) {
  FabricCollector collector(Level::Metrics, {});
  collector.bind(2, 1, 1);
  collector.mark_phase(0, 0, static_cast<u8>(Phase::Halo), 10.0);
  collector.mark_phase(0, 0, static_cast<u8>(Phase::Halo), 20.0); // same phase
  collector.mark_phase(0, 0, static_cast<u8>(Phase::Flux), 60.0);
  collector.finalize(100.0);

  // Implicit Setup [0,10), Halo [10,60) (coalesced), Flux [60,100].
  const auto& spans = collector.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, static_cast<u8>(Phase::Setup));
  EXPECT_DOUBLE_EQ(spans[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 10.0);
  EXPECT_EQ(spans[1].phase, static_cast<u8>(Phase::Halo));
  EXPECT_DOUBLE_EQ(spans[1].end, 60.0);
  EXPECT_EQ(spans[2].phase, static_cast<u8>(Phase::Flux));
  EXPECT_DOUBLE_EQ(spans[2].end, 100.0);

  const auto cycles = collector.phase_cycles(0);
  EXPECT_DOUBLE_EQ(cycles[static_cast<u32>(Phase::Setup)], 10.0);
  EXPECT_DOUBLE_EQ(cycles[static_cast<u32>(Phase::Halo)], 50.0);
  EXPECT_DOUBLE_EQ(cycles[static_cast<u32>(Phase::Flux)], 40.0);
}

} // namespace
} // namespace fvdf::telemetry

// --- TraceBuffer thread safety (satellite of the telemetry PR) ------------

namespace fvdf::wse {
namespace {

TEST(TraceBufferConcurrency, ParallelAppendsAreAllCounted) {
  TraceBuffer buffer(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&buffer, i] {
      TraceSink sink = buffer.sink();
      for (int n = 0; n < kPerThread; ++n) {
        TraceRecord record;
        record.event = TraceEvent::LinkHop;
        record.cycles = static_cast<f64>(i * kPerThread + n);
        sink(record);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(buffer.total(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(buffer.count(TraceEvent::LinkHop),
            static_cast<u64>(kThreads) * kPerThread);
}

TEST(TraceBufferConcurrency, CopyTakesAConsistentSnapshot) {
  TraceBuffer buffer(64);
  TraceSink sink = buffer.sink();
  for (int n = 0; n < 100; ++n) sink(TraceRecord{});
  const TraceBuffer copy = buffer; // capacity bound: 64 kept, 100 counted
  EXPECT_EQ(copy.total(), 100u);
  EXPECT_EQ(copy.records().size(), 64u);
}

} // namespace
} // namespace fvdf::wse
