// Additional coverage for corners the main suites don't reach: queued
// receive descriptors, strided receives, control-only sends, link
// serialization order, device-driver edge cases (initial-field override,
// cycle-limit surfacing, u16 depth guard), H100 GPU solves, memcpy
// accounting, and degenerate component shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "csl/allreduce.hpp"
#include "fv/problem.hpp"
#include "gpu/gpu_solver.hpp"
#include "solver/pressure_solve.hpp"
#include "wse/fabric.hpp"

namespace fvdf {
namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::Dsd;
using wse::dsd;
using wse::Fabric;
using wse::MemSpan;
using wse::PeContext;
using wse::PeCoord;
using wse::PeProgram;
using wse::SwitchPosition;

class LambdaProgram final : public PeProgram {
public:
  using StartFn = std::function<void(PeContext&)>;
  using TaskFn = std::function<void(PeContext&, Color)>;
  LambdaProgram(StartFn start, TaskFn task)
      : start_(std::move(start)), task_(std::move(task)) {}
  void on_start(PeContext& ctx) override {
    if (start_) start_(ctx);
  }
  void on_task(PeContext& ctx, Color color) override {
    if (task_) task_(ctx, color);
  }

private:
  StartFn start_;
  TaskFn task_;
};

ColorConfig route_to(Dir dir) {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(dir)}};
  return config;
}

ColorConfig route_from(Dir dir) {
  ColorConfig config;
  config.positions = {SwitchPosition{DirMask::of(dir), DirMask::of(Dir::Ramp)}};
  return config;
}

// ---------- fabric corners ----------

TEST(FabricExtra, QueuedReceiveDescriptorsFillInFifoOrder) {
  // Two back-to-back messages on one color land in two queued descriptors.
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kFirst = 24, kSecond = 25;
  int completions = 0;

  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, route_to(Dir::East));
            const MemSpan a = ctx.memory().alloc_f32("a", 2);
            const MemSpan b = ctx.memory().alloc_f32("b", 2);
            for (u32 i = 0; i < 2; ++i) {
              ctx.memory().store(a.offset_words + i, 1.0f + static_cast<f32>(i));
              ctx.memory().store(b.offset_words + i, 10.0f + static_cast<f32>(i));
            }
            ctx.send(kData, dsd(a));
            ctx.send(kData, dsd(b));
            ctx.halt();
          } else {
            ctx.configure_router(kData, route_from(Dir::West));
            const MemSpan d1 = ctx.memory().alloc_f32("d1", 2);
            const MemSpan d2 = ctx.memory().alloc_f32("d2", 2);
            ctx.recv(kData, dsd(d1), kFirst);
            ctx.recv(kData, dsd(d2), kSecond);
          }
        },
        [&](PeContext& ctx, Color color) {
          ++completions;
          if (color == kFirst) {
            EXPECT_FLOAT_EQ(ctx.memory().load(0), 1.0f);
            EXPECT_FLOAT_EQ(ctx.memory().load(1), 2.0f);
          } else {
            EXPECT_EQ(color, kSecond);
            EXPECT_FLOAT_EQ(ctx.memory().load(2), 10.0f);
            EXPECT_FLOAT_EQ(ctx.memory().load(3), 11.0f);
            ctx.halt();
          }
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(completions, 2);
}

TEST(FabricExtra, StridedReceiveScattersWords) {
  Fabric fabric(2, 1);
  constexpr Color kData = 0;
  constexpr Color kDone = 24;
  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          if (coord.x == 0) {
            ctx.configure_router(kData, route_to(Dir::East));
            const MemSpan src = ctx.memory().alloc_f32("src", 3);
            for (u32 i = 0; i < 3; ++i)
              ctx.memory().store(src.offset_words + i, static_cast<f32>(i + 1));
            ctx.send(kData, dsd(src));
            ctx.halt();
          } else {
            ctx.configure_router(kData, route_from(Dir::West));
            const MemSpan dst = ctx.memory().alloc_f32("dst", 6);
            ctx.dsd().fmovs_imm(dsd(dst), 0.0f);
            // Stride-2 receive: words land at offsets 0, 2, 4.
            ctx.recv(kData, Dsd{dst.offset_words, 3, 2}, kDone);
          }
        },
        [](PeContext& ctx, Color) {
          EXPECT_FLOAT_EQ(ctx.memory().load(0), 1.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(1), 0.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(2), 2.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(3), 0.0f);
          EXPECT_FLOAT_EQ(ctx.memory().load(4), 3.0f);
          ctx.halt();
        });
  });
  EXPECT_TRUE(fabric.run().all_halted);
}

TEST(FabricExtra, ControlOnlySendAdvancesRemoteRouter) {
  Fabric fabric(2, 1);
  constexpr Color kCtl = 5;
  fabric.load([&](PeCoord coord) {
    return std::make_unique<LambdaProgram>(
        [coord](PeContext& ctx) {
          ColorConfig ring;
          if (coord.x == 0) {
            ring.positions = {SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)},
                              SwitchPosition{DirMask::of(Dir::East), DirMask::of(Dir::Ramp)}};
          } else {
            ring.positions = {SwitchPosition{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)},
                              SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(Dir::West)}};
          }
          ring.ring_mode = true;
          ctx.configure_router(kCtl, ring);
          if (coord.x == 0) ctx.send_control(kCtl, wse::color_bit(kCtl));
          ctx.halt();
        },
        nullptr);
  });
  EXPECT_TRUE(fabric.run().all_halted);
  EXPECT_EQ(fabric.pe_router(0, 0).position(kCtl), 1u);
  EXPECT_EQ(fabric.pe_router(1, 0).position(kCtl), 1u);
}

TEST(FabricExtra, LinkSerializesConsecutiveMessages) {
  // Two messages from the same PE on the same out-link cannot overlap:
  // total time >= 2 * transfer time of one.
  auto timed = [](int messages) {
    Fabric fabric(2, 1);
    constexpr Color kData = 0;
    constexpr Color kDone = 24;
    fabric.load([&](PeCoord coord) {
      return std::make_unique<LambdaProgram>(
          [coord, messages](PeContext& ctx) {
            if (coord.x == 0) {
              ctx.configure_router(kData, route_to(Dir::East));
              const MemSpan src = ctx.memory().alloc_f32("src", 512);
              for (int m = 0; m < messages; ++m) ctx.send(kData, dsd(src));
              ctx.halt();
            } else {
              ctx.configure_router(kData, route_from(Dir::West));
              const MemSpan dst = ctx.memory().alloc_f32("dst", 512);
              for (int m = 0; m < messages; ++m)
                ctx.recv(kData, dsd(dst), kDone);
            }
          },
          [messages, received = 0](PeContext& ctx, Color) mutable {
            if (++received == messages) ctx.halt();
          });
    });
    return fabric.run().cycles;
  };
  const f64 one = timed(1);
  const f64 three = timed(3);
  // Each extra 512-word message must occupy the link for >= 512 more
  // cycles (fixed per-run overheads are not tripled, so compare against
  // one + pure transfer time of the two extra messages).
  EXPECT_GE(three, one + 2.0 * 512.0);
}

// ---------- core driver corners ----------

TEST(CoreExtra, InitialFieldOverrideChangesConvergencePath) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 3, 9);
  CgOptions host_options;
  host_options.tolerance = 1e-24;
  const auto gold = solve_pressure_host(problem, host_options);

  // Warm start from (almost) the solution: far fewer iterations.
  core::DataflowConfig cold;
  cold.tolerance = 1e-13f;
  const auto from_zero = core::solve_dataflow(problem, cold);

  core::DataflowConfig warm = cold;
  warm.initial_field = gold.pressure;
  const auto from_solution = core::solve_dataflow(problem, warm);

  ASSERT_TRUE(from_zero.converged);
  ASSERT_TRUE(from_solution.converged);
  EXPECT_LT(from_solution.iterations, from_zero.iterations / 2);
  // Same answer either way.
  for (std::size_t i = 0; i < gold.pressure.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(from_solution.pressure[i]), gold.pressure[i], 1e-4);
}

TEST(CoreExtra, CycleLimitSurfacesAsError) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 8);
  core::DataflowConfig config;
  config.tolerance = 1e-30f; // will not converge quickly
  config.max_iterations = 100000;
  config.max_cycles = 500.0; // absurdly small budget
  EXPECT_THROW((void)core::solve_dataflow(problem, config), Error);
}

TEST(CoreExtra, DeltaPlusInitialEqualsPressure) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 3, 5);
  core::DataflowConfig config;
  config.tolerance = 1e-13f;
  const auto result = core::solve_dataflow(problem, config);
  const auto p0 = problem.initial_pressure();
  for (std::size_t i = 0; i < result.pressure.size(); ++i)
    EXPECT_FLOAT_EQ(result.pressure[i],
                    static_cast<f32>(p0[i]) + result.delta[i]);
}

TEST(CoreExtra, ValidationReportSummaryIsInformative) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 3);
  core::DataflowConfig config;
  config.tolerance = 1e-13f;
  const auto report = core::validate_against_host(problem, config, 1e-22);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("max|dp|"), std::string::npos);
  EXPECT_NE(summary.find("iterations"), std::string::npos);
  EXPECT_EQ(summary.find("NOT converged"), std::string::npos);
}

// ---------- GPU extras ----------

TEST(GpuExtra, H100SolvesAndIsFasterThanA100InTheModel) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 4, 12);
  gpu::GpuSolveConfig config;
  config.tolerance = 1e-12;

  gpu::GpuFvSolver a100(problem, GpuSpec::a100(), 1);
  gpu::GpuFvSolver h100(problem, GpuSpec::h100(), 1);
  const auto result_a = a100.solve(config);
  const auto result_h = h100.solve(config);
  ASSERT_TRUE(result_a.converged);
  ASSERT_TRUE(result_h.converged);
  // Same algorithm, same iterations; modeled time favors H100.
  EXPECT_EQ(result_a.iterations, result_h.iterations);
  EXPECT_LT(result_h.modeled_seconds, result_a.modeled_seconds);
  for (std::size_t i = 0; i < result_a.pressure.size(); ++i)
    EXPECT_FLOAT_EQ(result_a.pressure[i], result_h.pressure[i]);
}

TEST(GpuExtra, MemcpyTrafficIsCounted) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 2);
  gpu::GpuFvSolver solver(problem, GpuSpec::a100(), 1);
  // The upload happened at construction.
  EXPECT_GT(solver.device().memcpy_bytes(), 0u);
}

// ---------- component degenerate shapes ----------

class TinyAllReduce final : public PeProgram {
public:
  explicit TinyAllReduce(std::vector<f32>* sink) : sink_(sink) {}
  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx);
    reduce_.start(ctx, 2.5f, [this](PeContext& c, f32 total) {
      sink_->push_back(total);
      c.halt();
    });
  }
  void on_task(PeContext& ctx, Color color) override { reduce_.on_task(ctx, color); }

private:
  csl::AllReduce reduce_;
  std::vector<f32>* sink_;
};

TEST(ComponentExtra, AllReduceOnLargeFabric) {
  Fabric fabric(10, 10);
  std::vector<f32> results;
  fabric.load([&](PeCoord) { return std::make_unique<TinyAllReduce>(&results); });
  ASSERT_TRUE(fabric.run().all_halted);
  ASSERT_EQ(results.size(), 100u);
  for (f32 total : results) EXPECT_FLOAT_EQ(total, 250.0f);
}

TEST(ComponentExtra, DataflowSolveWithUnitDepth) {
  // nz = 1: no z-faces at all; the kernel's cz branch must be absent.
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 1, 3);
  core::DataflowConfig config;
  config.tolerance = 1e-14f;
  const auto report = core::validate_against_host(problem, config, 1e-24);
  EXPECT_LT(report.rel_l2_error, 1e-4) << report.summary();
}

TEST(ComponentExtra, OnTheFlyJxOnlyRunsAtDepthOne) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 1);
  core::DataflowConfig config;
  config.flux_mode = core::FluxMode::OnTheFly;
  config.jx_only = true;
  config.max_iterations = 3;
  const auto result = core::solve_dataflow(problem, config);
  EXPECT_EQ(result.iterations, 3u);
}

} // namespace
} // namespace fvdf
