// End-to-end tests of the dataflow FV solver on the simulated fabric:
// numerical agreement with the f64 host oracle across fabric shapes
// (odd/even extents exercise the parity-dependent Table-I schedule),
// permeability fields, flux-kernel modes and column depths.

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf::core {
namespace {

DataflowConfig tight_config(FluxMode mode = FluxMode::Fused) {
  DataflowConfig config;
  config.flux_mode = mode;
  config.tolerance = 1e-12f; // on r^T r
  config.max_iterations = 2000;
  return config;
}

TEST(DataflowSolver, SolvesTinyHomogeneousProblem) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0u);

  const auto report = compare_with_host(problem, result, 1e-20);
  EXPECT_LT(report.rel_l2_error, 1e-5);
  EXPECT_LT(report.host_residual_norm, 1e-4);
}

TEST(DataflowSolver, MatchesHostOnHeterogeneousProblem) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 8, /*seed=*/42);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged);
  const auto report = compare_with_host(problem, result, 1e-22);
  EXPECT_LT(report.rel_l2_error, 2e-5) << report.summary();
}

TEST(DataflowSolver, OnTheFlyModeMatchesFusedMode) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 6, /*seed=*/7);
  const auto fused = solve_dataflow(problem, tight_config(FluxMode::Fused));
  const auto otf = solve_dataflow(problem, tight_config(FluxMode::OnTheFly));
  ASSERT_TRUE(fused.converged);
  ASSERT_TRUE(otf.converged);
  for (std::size_t i = 0; i < fused.pressure.size(); ++i)
    EXPECT_NEAR(fused.pressure[i], otf.pressure[i], 1e-4f);
}

struct ShapeParam {
  i64 nx, ny, nz;
};

class DataflowShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(DataflowShapes, ConvergesAndMatchesHost) {
  const auto [nx, ny, nz] = GetParam();
  const auto problem = FlowProblem::quarter_five_spot(nx, ny, nz, /*seed=*/13, 0.5);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged) << nx << "x" << ny << "x" << nz;
  const auto report = compare_with_host(problem, result, 1e-22);
  EXPECT_LT(report.rel_l2_error, 5e-5)
      << nx << "x" << ny << "x" << nz << ": " << report.summary();
}

// Odd/even fabric extents exercise all parity paths of the Table-I
// schedule; 1-wide fabrics exercise the degenerate edge cases.
INSTANTIATE_TEST_SUITE_P(
    Shapes, DataflowShapes,
    ::testing::Values(ShapeParam{2, 2, 3}, ShapeParam{3, 3, 3}, ShapeParam{4, 3, 5},
                      ShapeParam{3, 4, 5}, ShapeParam{5, 5, 2}, ShapeParam{1, 5, 4},
                      ShapeParam{5, 1, 4}, ShapeParam{1, 1, 6}, ShapeParam{7, 2, 3},
                      ShapeParam{2, 7, 3}, ShapeParam{6, 6, 1}, ShapeParam{8, 7, 4}));

TEST(DataflowSolver, JxOnlyModeRunsFixedIterations) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 6);
  DataflowConfig config;
  config.jx_only = true;
  config.max_iterations = 10;
  const auto result = solve_dataflow(problem, config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_GT(result.device_cycles, 0.0);
}

TEST(DataflowSolver, DeviceIterationCountTracksHostF32) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 5, /*seed=*/3, 0.5);
  const auto result = solve_dataflow(problem, tight_config());

  CgOptions options;
  options.tolerance = 1e-12;
  const auto host = solve_pressure_host_f32(problem, options);
  ASSERT_TRUE(result.converged);
  ASSERT_TRUE(host.cg.converged);
  // fp32 reduction orders differ (device reduces along chains), so allow a
  // small iteration-count drift.
  const i64 device_iters = static_cast<i64>(result.iterations);
  const i64 host_iters = static_cast<i64>(host.cg.iterations);
  EXPECT_NEAR(static_cast<double>(device_iters), static_cast<double>(host_iters),
              std::max<double>(3.0, 0.2 * static_cast<double>(host_iters)));
}

TEST(DataflowSolver, CommOnlyTimingIsCheaperThanFullRun) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 8);
  DataflowConfig full;
  full.jx_only = true;
  full.max_iterations = 5;
  const auto with_compute = solve_dataflow(problem, full);

  DataflowConfig comm_only = full;
  comm_only.timing.compute_scale = 0.0; // Table IV's FLOP-free run
  const auto without_compute = solve_dataflow(problem, comm_only);

  EXPECT_LT(without_compute.device_cycles, with_compute.device_cycles);
  // Identical traffic either way.
  EXPECT_EQ(without_compute.fabric.words_delivered, with_compute.fabric.words_delivered);
}

TEST(DataflowSolver, ReportsFabricTraffic) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_GT(result.fabric.messages_sent, 0u);
  EXPECT_GT(result.fabric.words_delivered, 0u);
  EXPECT_GT(result.counters.total_flops(), 0u);
}

} // namespace
} // namespace fvdf::core
