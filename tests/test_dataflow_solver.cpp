// End-to-end tests of the dataflow FV solver on the simulated fabric:
// numerical agreement with the f64 host oracle across fabric shapes
// (odd/even extents exercise the parity-dependent Table-I schedule),
// permeability fields, flux-kernel modes and column depths.

#include <gtest/gtest.h>

#include <cstring>

#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"
#include "telemetry/session.hpp"

namespace fvdf::core {
namespace {

DataflowConfig tight_config(FluxMode mode = FluxMode::Fused) {
  DataflowConfig config;
  config.flux_mode = mode;
  config.tolerance = 1e-12f; // on r^T r
  config.max_iterations = 2000;
  return config;
}

TEST(DataflowSolver, SolvesTinyHomogeneousProblem) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0u);

  const auto report = compare_with_host(problem, result, 1e-20);
  EXPECT_LT(report.rel_l2_error, 1e-5);
  EXPECT_LT(report.host_residual_norm, 1e-4);
}

TEST(DataflowSolver, MatchesHostOnHeterogeneousProblem) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 8, /*seed=*/42);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged);
  const auto report = compare_with_host(problem, result, 1e-22);
  EXPECT_LT(report.rel_l2_error, 2e-5) << report.summary();
}

TEST(DataflowSolver, OnTheFlyModeMatchesFusedMode) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 6, /*seed=*/7);
  const auto fused = solve_dataflow(problem, tight_config(FluxMode::Fused));
  const auto otf = solve_dataflow(problem, tight_config(FluxMode::OnTheFly));
  ASSERT_TRUE(fused.converged);
  ASSERT_TRUE(otf.converged);
  for (std::size_t i = 0; i < fused.pressure.size(); ++i)
    EXPECT_NEAR(fused.pressure[i], otf.pressure[i], 1e-4f);
}

struct ShapeParam {
  i64 nx, ny, nz;
};

class DataflowShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(DataflowShapes, ConvergesAndMatchesHost) {
  const auto [nx, ny, nz] = GetParam();
  const auto problem = FlowProblem::quarter_five_spot(nx, ny, nz, /*seed=*/13, 0.5);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_TRUE(result.converged) << nx << "x" << ny << "x" << nz;
  const auto report = compare_with_host(problem, result, 1e-22);
  EXPECT_LT(report.rel_l2_error, 5e-5)
      << nx << "x" << ny << "x" << nz << ": " << report.summary();
}

// Odd/even fabric extents exercise all parity paths of the Table-I
// schedule; 1-wide fabrics exercise the degenerate edge cases.
INSTANTIATE_TEST_SUITE_P(
    Shapes, DataflowShapes,
    ::testing::Values(ShapeParam{2, 2, 3}, ShapeParam{3, 3, 3}, ShapeParam{4, 3, 5},
                      ShapeParam{3, 4, 5}, ShapeParam{5, 5, 2}, ShapeParam{1, 5, 4},
                      ShapeParam{5, 1, 4}, ShapeParam{1, 1, 6}, ShapeParam{7, 2, 3},
                      ShapeParam{2, 7, 3}, ShapeParam{6, 6, 1}, ShapeParam{8, 7, 4}));

TEST(DataflowSolver, JxOnlyModeRunsFixedIterations) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 6);
  DataflowConfig config;
  config.jx_only = true;
  config.max_iterations = 10;
  const auto result = solve_dataflow(problem, config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 10u);
  EXPECT_GT(result.device_cycles, 0.0);
}

TEST(DataflowSolver, DeviceIterationCountTracksHostF32) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 5, /*seed=*/3, 0.5);
  const auto result = solve_dataflow(problem, tight_config());

  CgOptions options;
  options.tolerance = 1e-12;
  const auto host = solve_pressure_host_f32(problem, options);
  ASSERT_TRUE(result.converged);
  ASSERT_TRUE(host.cg.converged);
  // fp32 reduction orders differ (device reduces along chains), so allow a
  // small iteration-count drift.
  const i64 device_iters = static_cast<i64>(result.iterations);
  const i64 host_iters = static_cast<i64>(host.cg.iterations);
  EXPECT_NEAR(static_cast<double>(device_iters), static_cast<double>(host_iters),
              std::max<double>(3.0, 0.2 * static_cast<double>(host_iters)));
}

TEST(DataflowSolver, CommOnlyTimingIsCheaperThanFullRun) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 8);
  DataflowConfig full;
  full.jx_only = true;
  full.max_iterations = 5;
  const auto with_compute = solve_dataflow(problem, full);

  DataflowConfig comm_only = full;
  comm_only.timing.compute_scale = 0.0; // Table IV's FLOP-free run
  const auto without_compute = solve_dataflow(problem, comm_only);

  EXPECT_LT(without_compute.device_cycles, with_compute.device_cycles);
  // Identical traffic either way.
  EXPECT_EQ(without_compute.fabric.words_delivered, with_compute.fabric.words_delivered);
}

TEST(DataflowSolver, ReportsFabricTraffic) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  const auto result = solve_dataflow(problem, tight_config());
  EXPECT_GT(result.fabric.messages_sent, 0u);
  EXPECT_GT(result.fabric.words_delivered, 0u);
  EXPECT_GT(result.counters.total_flops(), 0u);
}

// --- engine parity --------------------------------------------------------
// The bytecode engine (SimEngine::Bytecode, the default) must be a
// bit-exact drop-in for the legacy state-machine programs: identical
// solution words, iteration counts, cycle counts, fabric statistics,
// residual histories and telemetry, on every kernel configuration.

void expect_bitwise_identical(const DataflowResult& a, const DataflowResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.delta.size(), b.delta.size());
  EXPECT_EQ(std::memcmp(a.delta.data(), b.delta.data(),
                        a.delta.size() * sizeof(f32)),
            0);
  ASSERT_EQ(a.pressure.size(), b.pressure.size());
  EXPECT_EQ(std::memcmp(a.pressure.data(), b.pressure.data(),
                        a.pressure.size() * sizeof(f32)),
            0);
  EXPECT_EQ(std::memcmp(&a.final_rr, &b.final_rr, sizeof(f32)), 0);
  EXPECT_EQ(a.device_cycles, b.device_cycles); // exact, not approximate
  EXPECT_EQ(a.fabric, b.fabric);               // every traffic counter
  EXPECT_EQ(a.counters.summary(), b.counters.summary());
  EXPECT_EQ(a.residual_history, b.residual_history);
}

struct EnginePair {
  DataflowResult bytecode;
  DataflowResult legacy;
  std::array<f64, telemetry::kNumPhases> bytecode_phases{};
  std::array<f64, telemetry::kNumPhases> legacy_phases{};
};

EnginePair run_both_engines(const FlowProblem& problem, DataflowConfig config) {
  EnginePair out;
  {
    telemetry::Session session({telemetry::Level::Metrics});
    config.engine = SimEngine::Bytecode;
    config.telemetry = &session;
    out.bytecode = solve_dataflow(problem, config);
    out.bytecode_phases = session.reference_phase_cycles();
  }
  {
    telemetry::Session session({telemetry::Level::Metrics});
    config.engine = SimEngine::Legacy;
    config.telemetry = &session;
    out.legacy = solve_dataflow(problem, config);
    out.legacy_phases = session.reference_phase_cycles();
  }
  return out;
}

TEST(EngineParity, CgFusedIsBitwiseIdentical) {
  const auto problem = FlowProblem::quarter_five_spot(6, 5, 8, /*seed=*/42);
  const auto pair = run_both_engines(problem, tight_config(FluxMode::Fused));
  ASSERT_TRUE(pair.bytecode.converged);
  expect_bitwise_identical(pair.bytecode, pair.legacy);
  // Telemetry attribution (Table-II phase cycles) matches to the bit too:
  // both engines charge the same phases at the same cycle cursors.
  for (std::size_t p = 0; p < pair.bytecode_phases.size(); ++p)
    EXPECT_EQ(pair.bytecode_phases[p], pair.legacy_phases[p]) << "phase " << p;
}

TEST(EngineParity, CgOnTheFlyIsBitwiseIdentical) {
  const auto problem = FlowProblem::quarter_five_spot(5, 4, 6, /*seed=*/7);
  const auto pair = run_both_engines(problem, tight_config(FluxMode::OnTheFly));
  ASSERT_TRUE(pair.bytecode.converged);
  expect_bitwise_identical(pair.bytecode, pair.legacy);
}

TEST(EngineParity, JacobiPreconditionedWithShiftIsBitwiseIdentical) {
  const auto problem = FlowProblem::quarter_five_spot(4, 5, 5, /*seed=*/11);
  DataflowConfig config = tight_config();
  config.jacobi_precondition = true;
  config.diagonal_shift = 0.05f;
  const auto pair = run_both_engines(problem, config);
  ASSERT_TRUE(pair.bytecode.converged);
  expect_bitwise_identical(pair.bytecode, pair.legacy);
}

TEST(EngineParity, JxOnlyModeIsBitwiseIdentical) {
  const auto problem = FlowProblem::homogeneous_column(4, 4, 6);
  DataflowConfig config;
  config.jx_only = true;
  config.max_iterations = 8;
  const auto pair = run_both_engines(problem, config);
  EXPECT_EQ(pair.bytecode.iterations, 8u);
  expect_bitwise_identical(pair.bytecode, pair.legacy);
}

// Odd/even fabric extents select different Table-I schedule parities and
// different lowered programs — every shape must agree with legacy.
TEST(EngineParity, HoldsAcrossFabricShapes) {
  for (const auto& [nx, ny, nz] :
       {ShapeParam{1, 1, 4}, ShapeParam{1, 5, 3}, ShapeParam{5, 1, 3},
        ShapeParam{3, 4, 5}, ShapeParam{7, 2, 3}}) {
    const auto problem = FlowProblem::quarter_five_spot(nx, ny, nz, /*seed=*/13, 0.5);
    const auto pair = run_both_engines(problem, tight_config());
    expect_bitwise_identical(pair.bytecode, pair.legacy);
  }
}

TEST(EngineParity, ChebyshevIsBitwiseIdentical) {
  const auto problem = FlowProblem::homogeneous_column(5, 5, 3);
  ChebyshevDeviceConfig config;
  config.bounds = SpectralBounds{0.05, 12.0}; // conservative bracket
  config.tolerance = 1e-8f;
  config.max_iterations = 2000;
  config.check_every = 8;
  DataflowResult bytecode, legacy;
  {
    telemetry::Session session({telemetry::Level::Metrics});
    config.engine = SimEngine::Bytecode;
    config.telemetry = &session;
    bytecode = solve_dataflow_chebyshev(problem, config);
  }
  {
    telemetry::Session session({telemetry::Level::Metrics});
    config.engine = SimEngine::Legacy;
    config.telemetry = &session;
    legacy = solve_dataflow_chebyshev(problem, config);
  }
  expect_bitwise_identical(bytecode, legacy);
}

// sim_threads is a host-side knob: the bytecode engine must stay bitwise
// deterministic under the parallel event engine, and equal to the legacy
// engine at every thread count.
TEST(EngineParity, HoldsAtEveryThreadCount) {
  const auto problem = FlowProblem::quarter_five_spot(4, 6, 5, /*seed=*/23);
  DataflowConfig config = tight_config();
  config.sim_threads = 1;
  const auto pair1 = run_both_engines(problem, config);
  expect_bitwise_identical(pair1.bytecode, pair1.legacy);
  for (u32 threads : {2u, 3u}) {
    DataflowConfig threaded = tight_config();
    threaded.sim_threads = threads;
    const auto pair = run_both_engines(problem, threaded);
    expect_bitwise_identical(pair.bytecode, pair.legacy);
    expect_bitwise_identical(pair.bytecode, pair1.bytecode);
  }
}

// The preflight verifier consumes the bytecode manifest (derived from the
// instruction stream); a full verified solve must pass on both engines.
TEST(EngineParity, VerifyPreflightPassesOnBothEngines) {
  const auto problem = FlowProblem::quarter_five_spot(3, 3, 4, /*seed=*/5);
  for (SimEngine engine : {SimEngine::Bytecode, SimEngine::Legacy}) {
    DataflowConfig config = tight_config();
    config.engine = engine;
    config.verify_preflight = true;
    const auto result = solve_dataflow(problem, config);
    EXPECT_TRUE(result.converged);
    const auto report = verify_dataflow(problem, config);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

} // namespace
} // namespace fvdf::core
