// Solver tests: BLAS-1 kernels, dense oracles (LU / LDL^T), conjugate
// gradient semantics against Algorithm 1 (exact solve in <= n iterations,
// convergence criterion on r^T r, history tracking), and the end-to-end
// host pressure solve.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/blas.hpp"
#include "solver/cg.hpp"
#include "solver/dense.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf {
namespace {

// ---------- BLAS ----------

TEST(Blas, DotAxpyXpbyCopyScale) {
  std::vector<f64> x = {1, 2, 3};
  std::vector<f64> y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::dot(x.data(), y.data(), 3), 32.0);

  blas::axpy(2.0, x.data(), y.data(), 3); // y = {6, 9, 12}
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);

  blas::xpby(x.data(), 0.5, y.data(), 3); // y = x + 0.5 y = {4, 6.5, 9}
  EXPECT_DOUBLE_EQ(y[1], 6.5);

  std::vector<f64> z(3);
  blas::copy(x.data(), z.data(), 3);
  EXPECT_EQ(z, x);

  blas::scale(3.0, z.data(), 3);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Blas, Norm2AndMaxAbsDiff) {
  std::vector<f64> x = {3, 4};
  EXPECT_DOUBLE_EQ(blas::norm2(x.data(), 2), 5.0);
  std::vector<f64> y = {3.5, 2};
  EXPECT_DOUBLE_EQ(blas::max_abs_diff(x.data(), y.data(), 2), 2.0);
}

TEST(Blas, DotAccumulatesInF64ForF32Inputs) {
  // 2^24 + 1 is not representable in f32 accumulation; f64 handles it.
  const std::size_t n = (1u << 24) + 2;
  std::vector<f32> ones(n, 1.0f);
  EXPECT_DOUBLE_EQ(blas::dot(ones.data(), ones.data(), n), static_cast<f64>(n));
}

// ---------- Dense oracles ----------

TEST(Dense, LuSolvesRandomSystem) {
  Rng rng(5);
  const std::size_t n = 12;
  DenseMatrix a(n);
  std::vector<f64> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-2, 2);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 8.0; // diagonal dominance for a well-conditioned test
  }
  std::vector<f64> b(n);
  a.apply(x_true.data(), b.data());
  const auto x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Dense, LuThrowsOnSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4; // rank 1
  EXPECT_THROW(lu_solve(a, {1.0, 0.0}), Error);
}

TEST(Dense, LdltSolvesSpdAndRejectsIndefinite) {
  DenseMatrix spd(2);
  spd.at(0, 0) = 4;
  spd.at(0, 1) = 1;
  spd.at(1, 0) = 1;
  spd.at(1, 1) = 3;
  std::vector<f64> x;
  ASSERT_TRUE(ldlt_solve(spd, {9.0, 8.0}, x)); // solution {19/11, 23/11}
  EXPECT_NEAR(x[0], 19.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 23.0 / 11.0, 1e-12);

  DenseMatrix indef(2);
  indef.at(0, 0) = 1;
  indef.at(1, 1) = -1;
  EXPECT_FALSE(ldlt_solve(indef, {1.0, 1.0}, x));
}

TEST(Dense, FromOperatorReconstructsMatrix) {
  DenseMatrix a(3);
  a.at(0, 0) = 2;
  a.at(1, 2) = -1;
  a.at(2, 1) = 5;
  const auto b = DenseMatrix::from_operator(
      [&](const f64* x, f64* y) { a.apply(x, y); }, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
}

// ---------- Conjugate gradient (Algorithm 1) ----------

TEST(Cg, SolvesIdentityInOneIteration) {
  const std::size_t n = 10;
  std::vector<f64> b(n, 2.0), y(n);
  const auto result = conjugate_gradient<f64>(
      [](const f64* in, f64* out) { std::copy(in, in + 10, out); }, b.data(),
      y.data(), n, {.max_iterations = 10, .tolerance = 1e-20});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1u);
  for (f64 v : y) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(Cg, ExactInAtMostNIterations) {
  // Krylov theory: exact convergence in <= n steps (here well within).
  Rng rng(9);
  const std::size_t n = 20;
  DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const f64 v = rng.uniform(-0.4, 0.4);
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
    a.at(i, i) = 6.0;
  }
  std::vector<f64> b(n), y(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto result = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { a.apply(in, out); }, b.data(), y.data(), n,
      {.max_iterations = n + 2, .tolerance = 1e-24});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, n + 1);
  const auto oracle = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], oracle[i], 1e-9);
}

TEST(Cg, MatchesDirectSolveOnFvProblem) {
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 2, 77);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());

  Rng rng(3);
  std::vector<f64> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (const auto& [idx, value] : problem.bc().sorted())
    b[static_cast<std::size_t>(idx)] = 0.0; // RHS in the CG-invariant subspace

  std::vector<f64> y(n);
  const auto result = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, b.data(), y.data(), n,
      {.max_iterations = 500, .tolerance = 1e-24});
  ASSERT_TRUE(result.converged);

  const auto dense =
      DenseMatrix::from_operator([&](const f64* in, f64* out) { op.apply(in, out); }, n);
  const auto oracle = lu_solve(dense, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], oracle[i], 1e-8);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  std::vector<f64> b(5, 0.0), y(5, 1.0);
  const auto result = conjugate_gradient<f64>(
      [](const f64* in, f64* out) { std::copy(in, in + 5, out); }, b.data(), y.data(),
      5, {.tolerance = 1e-30});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (f64 v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, StopsAtMaxIterationsWithoutConvergence) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 3, 5);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> b(n, 0.0), y(n);
  for (const auto& [idx, value] : problem.bc().sorted()) (void)idx;
  b[static_cast<std::size_t>(problem.mesh().index(2, 2, 1))] = 1.0;
  const auto result = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, b.data(), y.data(), n,
      {.max_iterations = 3, .tolerance = 1e-30});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3u);
}

TEST(Cg, HistoryIsMonotoneOverall) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 2, 55);
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> b(n, 0.0), y(n);
  b[static_cast<std::size_t>(problem.mesh().index(2, 2, 0))] = 1.0;
  const auto result = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, b.data(), y.data(), n,
      {.max_iterations = 200, .tolerance = 1e-24, .track_history = true});
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.rr_history.size(), 2u);
  // r^T r is not strictly monotone in CG, but first-to-last must shrink
  // by the convergence factor.
  EXPECT_LT(result.rr_history.back(), result.rr_history.front() * 1e-12);
  EXPECT_EQ(result.operator_applications, result.iterations);
}

TEST(Cg, ThrowsOnIndefiniteOperator) {
  // Flip the sign: CG's curvature check must fire.
  std::vector<f64> b = {1.0, 1.0}, y(2);
  EXPECT_THROW(conjugate_gradient<f64>(
                   [](const f64* in, f64* out) {
                     out[0] = -in[0];
                     out[1] = -in[1];
                   },
                   b.data(), y.data(), 2, {}),
               Error);
}

// ---------- End-to-end host pressure solve ----------

TEST(PressureSolve, ConvergesAndSatisfiesEq3) {
  const auto problem = FlowProblem::quarter_five_spot(6, 6, 4, 1234);
  CgOptions options;
  options.tolerance = 1e-22;
  const auto result = solve_pressure_host(problem, options);
  EXPECT_TRUE(result.cg.converged);
  EXPECT_GT(result.initial_residual_norm, 0.0);
  EXPECT_LT(result.final_residual_norm, 1e-9 * result.initial_residual_norm +
                                            1e-10);
}

TEST(PressureSolve, SolutionIsBoundedByWellPressures) {
  // Discrete maximum principle: pressure lies between producer and
  // injector values.
  const auto problem = FlowProblem::quarter_five_spot(7, 7, 3, 4321);
  CgOptions options;
  options.tolerance = 1e-22;
  const auto result = solve_pressure_host(problem, options);
  for (f64 p : result.pressure) {
    EXPECT_GE(p, -1e-6);
    EXPECT_LE(p, 1.0 + 1e-6);
  }
}

TEST(PressureSolve, HomogeneousSingleColumnIsLinearInZ) {
  // 1x1xN column with Dirichlet at both ends (injector pins z=all? no —
  // injector_producer pins the whole (0,0) and (0,0) columns for 1x1, so
  // use a custom two-point pin instead).
  const CartesianMesh3D mesh(1, 1, 5);
  DirichletSet bc;
  bc.pin(mesh, {0, 0, 0}, 1.0);
  bc.pin(mesh, {0, 0, 4}, 0.0);
  const FlowProblem problem(mesh, perm::homogeneous(mesh, 1.0), 1.0, bc);
  CgOptions options;
  options.tolerance = 1e-24;
  const auto result = solve_pressure_host(problem, options);
  ASSERT_TRUE(result.cg.converged);
  for (i64 z = 0; z < 5; ++z)
    EXPECT_NEAR(result.pressure[static_cast<std::size_t>(mesh.index(0, 0, z))],
                1.0 - static_cast<f64>(z) / 4.0, 1e-9);
}

TEST(PressureSolve, F32VariantTracksF64) {
  const auto problem = FlowProblem::quarter_five_spot(5, 5, 3, 888);
  CgOptions options;
  options.tolerance = 1e-22;
  const auto gold = solve_pressure_host(problem, options);
  CgOptions options32;
  options32.tolerance = 1e-12;
  const auto f32_result = solve_pressure_host_f32(problem, options32);
  ASSERT_TRUE(f32_result.cg.converged);
  for (std::size_t i = 0; i < gold.pressure.size(); ++i)
    EXPECT_NEAR(static_cast<f64>(f32_result.pressure[i]), gold.pressure[i], 5e-5);
}

TEST(PressureSolve, IterationCountGrowsWithMeshSize) {
  // Unpreconditioned CG on an elliptic problem: iterations grow with
  // resolution — the scaling behavior Table III's step counts reflect.
  CgOptions options;
  options.tolerance = 1e-20;
  const auto small = solve_pressure_host(FlowProblem::homogeneous_column(4, 4, 2), options);
  const auto large = solve_pressure_host(FlowProblem::homogeneous_column(12, 12, 2), options);
  EXPECT_GT(large.cg.iterations, small.cg.iterations);
}

} // namespace
} // namespace fvdf
