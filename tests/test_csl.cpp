// CSL runtime-layer tests: the Table-I halo exchange (all parities and
// edge cases, switch positions restored), the 3-phase whole-fabric
// all-reduce (== serial sum on every fabric shape), and the Fig.-4
// eastward exchange with a single color + ring mode.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "csl/allreduce.hpp"
#include "csl/broadcast.hpp"
#include "csl/colors.hpp"
#include "csl/halo.hpp"
#include "wse/fabric.hpp"

namespace fvdf::csl {
namespace {

using wse::Dir;
using wse::Dsd;
using wse::dsd;
using wse::Fabric;
using wse::MemSpan;
using wse::PeContext;
using wse::PeCoord;
using wse::PeProgram;

// Each PE's column value is a unique fingerprint: f(x, y, z) = x*10000 +
// y*100 + z, so any misdelivery is detectable.
f32 fingerprint(i64 x, i64 y, u32 z) {
  return static_cast<f32>(x * 10000 + y * 100 + static_cast<i64>(z));
}

// ---------- HaloExchange ----------

class HaloTestProgram final : public PeProgram {
public:
  HaloTestProgram(u32 nz, int rounds) : nz_(nz), rounds_(rounds) {}

  void on_start(PeContext& ctx) override {
    halo_.configure(ctx);
    column_ = ctx.memory().alloc_f32("column", nz_);
    for (u32 z = 0; z < nz_; ++z)
      ctx.memory().store(column_.offset_words + z,
                         fingerprint(ctx.coord().x, ctx.coord().y, z));
    for (auto& buf : halos_) {
      buf = ctx.memory().alloc_f32("halo", nz_);
      for (u32 z = 0; z < nz_; ++z)
        ctx.memory().store(buf.offset_words + z, -1.0f); // sentinel
    }
    run_round(ctx);
  }

  void on_task(PeContext& ctx, wse::Color color) override {
    ASSERT_TRUE(halo_.handles(color));
    halo_.on_task(ctx, color);
  }

  int faces_received = 0;

private:
  void run_round(PeContext& ctx) {
    halo_.start(
        ctx, dsd(column_), dsd(halos_[0]), dsd(halos_[1]), dsd(halos_[2]),
        dsd(halos_[3]),
        [this](PeContext&, Dir) { ++faces_received; },
        [this](PeContext& c) {
          verify(c);
          if (--rounds_ > 0) {
            run_round(c);
          } else {
            c.halt();
          }
        });
  }

  void verify(PeContext& ctx) {
    const i64 x = ctx.coord().x;
    const i64 y = ctx.coord().y;
    const i64 width = ctx.fabric_width();
    const i64 height = ctx.fabric_height();
    auto check = [&](const MemSpan& buf, i64 nx, i64 ny, bool exists) {
      for (u32 z = 0; z < nz_; ++z) {
        const f32 got = ctx.memory().load(buf.offset_words + z);
        if (exists) {
          EXPECT_FLOAT_EQ(got, fingerprint(nx, ny, z))
              << "PE(" << x << "," << y << ") z=" << z;
        } else {
          EXPECT_FLOAT_EQ(got, -1.0f) << "boundary halo must stay untouched";
        }
      }
    };
    check(halos_[0], x - 1, y, x > 0);          // west neighbor
    check(halos_[1], x + 1, y, x < width - 1);  // east neighbor
    check(halos_[2], x, y + 1, y < height - 1); // fabric south = y+1
    check(halos_[3], x, y - 1, y > 0);          // fabric north = y-1
  }

  u32 nz_;
  int rounds_;
  HaloExchange halo_;
  MemSpan column_{};
  std::array<MemSpan, 4> halos_{};
};

struct FabricShape {
  i64 width, height;
};

class HaloShapes : public ::testing::TestWithParam<FabricShape> {};

TEST_P(HaloShapes, DeliversAllFourNeighborColumns) {
  const auto [width, height] = GetParam();
  Fabric fabric(width, height);
  fabric.load([&](PeCoord) { return std::make_unique<HaloTestProgram>(6, 1); });
  const auto result = fabric.run();
  EXPECT_TRUE(result.all_halted);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HaloShapes,
                         ::testing::Values(FabricShape{1, 1}, FabricShape{2, 1},
                                           FabricShape{1, 2}, FabricShape{2, 2},
                                           FabricShape{3, 3}, FabricShape{4, 3},
                                           FabricShape{3, 4}, FabricShape{5, 2},
                                           FabricShape{2, 5}, FabricShape{6, 6},
                                           FabricShape{7, 4}, FabricShape{4, 7}));

TEST(HaloExchange, SwitchPositionsReturnToInitialAfterEachRound) {
  // Ring mode + the advance protocol must restore every router; three
  // consecutive rounds would fail otherwise.
  Fabric fabric(4, 3);
  fabric.load([&](PeCoord) { return std::make_unique<HaloTestProgram>(3, 3); });
  EXPECT_TRUE(fabric.run().all_halted);
  for (i64 y = 0; y < 3; ++y)
    for (i64 x = 0; x < 4; ++x)
      for (wse::Color c : {kHaloC1, kHaloC2, kHaloC3, kHaloC4})
        EXPECT_EQ(fabric.pe_router(x, y).position(c), 0u)
            << "PE(" << x << "," << y << ") color " << static_cast<int>(c);
}

TEST(HaloExchange, FaceCallbackFiresPerReceivedFace) {
  Fabric fabric(3, 3);
  std::map<std::pair<i64, i64>, HaloTestProgram*> programs;
  fabric.load([&](PeCoord coord) {
    auto program = std::make_unique<HaloTestProgram>(2, 1);
    programs[{coord.x, coord.y}] = program.get();
    return program;
  });
  EXPECT_TRUE(fabric.run().all_halted);
  // Center PE has 4 neighbors, corner has 2, edge-middle has 3.
  EXPECT_EQ((programs[std::make_pair<i64, i64>(1, 1)]->faces_received), 4);
  EXPECT_EQ((programs[std::make_pair<i64, i64>(0, 0)]->faces_received), 2);
  EXPECT_EQ((programs[std::make_pair<i64, i64>(1, 0)]->faces_received), 3);
}

TEST(HaloExchange, TrafficMatchesFourColumnSendsPerInteriorPe) {
  const i64 width = 4, height = 4;
  const u32 nz = 8;
  Fabric fabric(width, height);
  fabric.load([&](PeCoord) { return std::make_unique<HaloTestProgram>(nz, 1); });
  EXPECT_TRUE(fabric.run().all_halted);
  // Every PE sends its column 4 times (one per step); edge sends drop.
  const u64 expected_injected = static_cast<u64>(width * height) * 4 * nz;
  EXPECT_EQ(fabric.stats().words_delivered + fabric.stats().words_dropped,
            expected_injected);
}

// ---------- AllReduce ----------

class AllReduceTestProgram final : public PeProgram {
public:
  AllReduceTestProgram(f32 value, int rounds, std::vector<f32>* sink)
      : value_(value), rounds_(rounds), sink_(sink) {}

  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx);
    start_round(ctx);
  }

  void on_task(PeContext& ctx, wse::Color color) override {
    ASSERT_TRUE(reduce_.handles(color));
    reduce_.on_task(ctx, color);
  }

private:
  void start_round(PeContext& ctx) {
    reduce_.start(ctx, value_, [this](PeContext& c, f32 total) {
      sink_->push_back(total);
      value_ += 1.0f; // change the contribution between rounds
      if (--rounds_ > 0) {
        start_round(c);
      } else {
        c.halt();
      }
    });
  }

  f32 value_;
  int rounds_;
  std::vector<f32>* sink_;
  AllReduce reduce_;
};

class AllReduceShapes : public ::testing::TestWithParam<FabricShape> {};

TEST_P(AllReduceShapes, SumsEveryPeContribution) {
  const auto [width, height] = GetParam();
  Fabric fabric(width, height);
  std::vector<f32> results;
  f64 expected = 0;
  fabric.load([&](PeCoord coord) {
    const f32 value = static_cast<f32>(coord.x + 10 * coord.y + 1);
    expected += value;
    return std::make_unique<AllReduceTestProgram>(value, 1, &results);
  });
  ASSERT_TRUE(fabric.run().all_halted);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(width * height));
  for (f32 total : results) EXPECT_FLOAT_EQ(total, static_cast<f32>(expected));
}

INSTANTIATE_TEST_SUITE_P(Shapes, AllReduceShapes,
                         ::testing::Values(FabricShape{1, 1}, FabricShape{2, 1},
                                           FabricShape{1, 2}, FabricShape{2, 2},
                                           FabricShape{3, 2}, FabricShape{2, 3},
                                           FabricShape{5, 5}, FabricShape{8, 3},
                                           FabricShape{3, 8}, FabricShape{7, 7},
                                           FabricShape{1, 6}, FabricShape{6, 1}));

TEST(AllReduce, BackToBackRoundsProduceFreshSums) {
  const i64 width = 4, height = 3;
  Fabric fabric(width, height);
  std::vector<f32> results;
  fabric.load([&](PeCoord) {
    return std::make_unique<AllReduceTestProgram>(1.0f, 3, &results);
  });
  ASSERT_TRUE(fabric.run().all_halted);
  const auto pes = static_cast<std::size_t>(width * height);
  ASSERT_EQ(results.size(), 3 * pes);
  // Round k contributes (1 + k) per PE.
  std::map<f32, int> histogram;
  for (f32 total : results) ++histogram[total];
  EXPECT_EQ(histogram[static_cast<f32>(pes)], static_cast<int>(pes));
  EXPECT_EQ(histogram[static_cast<f32>(2 * pes)], static_cast<int>(pes));
  EXPECT_EQ(histogram[static_cast<f32>(3 * pes)], static_cast<int>(pes));
}

TEST(AllReduce, HandlesNegativeAndFractionalValues) {
  Fabric fabric(3, 3);
  std::vector<f32> results;
  f64 expected = 0;
  fabric.load([&](PeCoord coord) {
    const f32 value = 0.25f * static_cast<f32>(coord.x) -
                      0.75f * static_cast<f32>(coord.y);
    expected += value;
    return std::make_unique<AllReduceTestProgram>(value, 1, &results);
  });
  ASSERT_TRUE(fabric.run().all_halted);
  for (f32 total : results)
    EXPECT_NEAR(total, expected, 1e-5) << "fp32 chain reduction";
}

// ---------- EastwardExchange (Fig. 4) ----------

class ExchangeTestProgram final : public PeProgram {
public:
  explicit ExchangeTestProgram(u32 nz) : nz_(nz) {}

  void on_start(PeContext& ctx) override {
    exchange_.configure(ctx);
    mine_ = ctx.memory().alloc_f32("mine", nz_);
    theirs_ = ctx.memory().alloc_f32("theirs", nz_);
    for (u32 z = 0; z < nz_; ++z) {
      ctx.memory().store(mine_.offset_words + z,
                         fingerprint(ctx.coord().x, ctx.coord().y, z));
      ctx.memory().store(theirs_.offset_words + z, -1.0f);
    }
    exchange_.start(ctx, dsd(mine_), dsd(theirs_), [this](PeContext& c) {
      verify(c);
      c.halt();
    });
  }

  void on_task(PeContext& ctx, wse::Color color) override {
    ASSERT_TRUE(exchange_.handles(color));
    exchange_.on_task(ctx, color);
  }

private:
  void verify(PeContext& ctx) {
    const i64 x = ctx.coord().x;
    for (u32 z = 0; z < nz_; ++z) {
      const f32 got = ctx.memory().load(theirs_.offset_words + z);
      if (x > 0) {
        EXPECT_FLOAT_EQ(got, fingerprint(x - 1, ctx.coord().y, z));
      } else {
        EXPECT_FLOAT_EQ(got, -1.0f);
      }
    }
  }

  u32 nz_;
  EastwardExchange exchange_;
  MemSpan mine_{}, theirs_{};
};

TEST(EastwardExchange, EveryPeReceivesItsWesternNeighborData) {
  for (i64 width : {1, 2, 3, 4, 7, 8}) {
    Fabric fabric(width, 1);
    fabric.load([&](PeCoord) { return std::make_unique<ExchangeTestProgram>(5); });
    EXPECT_TRUE(fabric.run().all_halted) << "width " << width;
  }
}

TEST(EastwardExchange, RingRestoresSwitchPositions) {
  Fabric fabric(4, 1);
  fabric.load([&](PeCoord) { return std::make_unique<ExchangeTestProgram>(3); });
  ASSERT_TRUE(fabric.run().all_halted);
  for (i64 x = 0; x < 4; ++x)
    EXPECT_EQ(fabric.pe_router(x, 0).position(kExchangeX), 0u) << "PE " << x;
}

TEST(EastwardExchange, RunsOnEveryRowOfA2dFabricIndependently) {
  Fabric fabric(3, 4);
  fabric.load([&](PeCoord) { return std::make_unique<ExchangeTestProgram>(4); });
  EXPECT_TRUE(fabric.run().all_halted);
}

} // namespace
} // namespace fvdf::csl
