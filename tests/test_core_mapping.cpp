// Memory planner and data-mapping tests: the Sec. III-E1 story in numbers —
// layouts fit (or don't) in 48 KiB, buffer reuse extends the reachable
// column depth, and per-PE marshalling slices the global arrays correctly.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/mapping.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "wse/memory.hpp"

namespace fvdf::core {
namespace {

TEST(PeLayout, PlanAllocatesEverySolverBuffer) {
  wse::PeMemory mem;
  const PeLayout layout = PeLayout::plan(mem, 32, FluxMode::Fused, 0);
  EXPECT_EQ(layout.cw.length, 32u);
  EXPECT_EQ(layout.ce.length, 32u);
  EXPECT_EQ(layout.cs.length, 32u);
  EXPECT_EQ(layout.cn.length, 32u);
  EXPECT_EQ(layout.cz.length, 31u);
  EXPECT_EQ(layout.x.length, 32u);
  EXPECT_EQ(layout.r.length, 32u);
  EXPECT_EQ(layout.ysol.length, 32u);
  EXPECT_EQ(layout.q.length, 32u);
  EXPECT_EQ(layout.d.length, 32u);
  EXPECT_EQ(layout.halo_w.length, 32u);
  EXPECT_EQ(layout.result.length, 3u);
  EXPECT_EQ(layout.lambda.length, 0u); // fused mode has no mobility array
  EXPECT_GT(mem.used_bytes(), 0u);
}

TEST(PeLayout, OnTheFlyModeAddsMobilityBuffers) {
  wse::PeMemory mem;
  const PeLayout layout = PeLayout::plan(mem, 16, FluxMode::OnTheFly, 0);
  EXPECT_EQ(layout.lambda.length, 16u);
  EXPECT_EQ(layout.lh_w.length, 16u);
  EXPECT_EQ(layout.lh_n.length, 16u);
  EXPECT_EQ(layout.scratch2.length, 16u);
}

TEST(PeLayout, DirichletListSizedToCount) {
  wse::PeMemory mem;
  const PeLayout layout = PeLayout::plan(mem, 16, FluxMode::Fused, 5);
  EXPECT_EQ(layout.dirichlet_count, 5u);
  EXPECT_EQ(layout.dirichlet_list.length, 10u); // 2 bytes per entry
}

TEST(PeLayout, PlanIsDeterministic) {
  wse::PeMemory a, b;
  const PeLayout la = PeLayout::plan(a, 64, FluxMode::Fused, 3);
  const PeLayout lb = PeLayout::plan(b, 64, FluxMode::Fused, 3);
  EXPECT_EQ(la.x.offset_words, lb.x.offset_words);
  EXPECT_EQ(la.ysol.offset_words, lb.ysol.offset_words);
  EXPECT_EQ(la.result.offset_words, lb.result.offset_words);
  EXPECT_EQ(a.used_bytes(), b.used_bytes());
}

TEST(PeLayout, NzOneHasNoVerticalCoefficients) {
  wse::PeMemory mem;
  const PeLayout layout = PeLayout::plan(mem, 1, FluxMode::Fused, 0);
  EXPECT_EQ(layout.cz.length, 0u);
}

TEST(PeLayout, OverflowThrows) {
  wse::PeMemory mem; // 48 KiB
  EXPECT_THROW(PeLayout::plan(mem, 4000, FluxMode::Fused, 0), Error);
}

// ---------- check_fit / max_nz: the memory ablation's backbone ----------

TEST(MemoryPlanner, OptimizedLayoutFitsDeeperColumnsThanOnTheFly) {
  const u64 capacity = 48 * 1024, reserve = 2048;
  const u32 fused = max_nz(LayoutKind::Optimized, capacity, reserve);
  const u32 otf = max_nz(LayoutKind::OnTheFly, capacity, reserve);
  const u32 naive = max_nz(LayoutKind::Naive, capacity, reserve);
  EXPECT_GT(fused, otf);
  EXPECT_GT(otf, naive);
  // The optimized layout must reach paper-order column depths (922-class),
  // the naive one must not (the Sec. III-E1 claim).
  EXPECT_GE(fused, 800u);
  EXPECT_LE(naive, 650u);
}

TEST(MemoryPlanner, CheckFitAgreesWithMaxNz) {
  const u64 capacity = 48 * 1024, reserve = 2048;
  for (LayoutKind kind :
       {LayoutKind::Optimized, LayoutKind::OnTheFly, LayoutKind::Naive}) {
    const u32 limit = max_nz(kind, capacity, reserve);
    EXPECT_TRUE(check_fit(kind, limit, capacity, reserve).fits);
    EXPECT_FALSE(check_fit(kind, limit + 1, capacity, reserve).fits);
  }
}

TEST(MemoryPlanner, BytesNeededGrowsLinearlyInNz) {
  const auto a = check_fit(LayoutKind::Optimized, 100, 1 << 20, 0);
  const auto b = check_fit(LayoutKind::Optimized, 200, 1 << 20, 0);
  EXPECT_GT(b.bytes_needed, a.bytes_needed);
  const u64 per_cell = (b.bytes_needed - a.bytes_needed) / 100;
  // 13 fp32 arrays + 1 mask-ish byte ~ low-50s bytes per cell.
  EXPECT_GE(per_cell, 40u);
  EXPECT_LE(per_cell, 70u);
}

TEST(MemoryPlanner, SmallerCapacityShrinksMaxNz) {
  const u32 big = max_nz(LayoutKind::Optimized, 48 * 1024, 2048);
  const u32 small = max_nz(LayoutKind::Optimized, 24 * 1024, 2048);
  EXPECT_LT(small, big);
  EXPECT_GT(small, 0u);
}

TEST(MemoryPlanner, NaiveBytesFormula) {
  // 23 arrays x 4 B/cell + Dirichlet list + result scalars.
  EXPECT_EQ(PeLayout::naive_bytes(100, 0), 23u * 4 * 100 + 12);
  EXPECT_EQ(PeLayout::naive_bytes(100, 10), 23u * 4 * 100 + 20 + 12);
}

// ---------- build_pe_init marshalling ----------

TEST(BuildPeInit, SlicesColumnsCorrectly) {
  const auto problem = FlowProblem::quarter_five_spot(4, 3, 5, 77);
  const auto sys = problem.discretize<f32>();
  const PeInit init = build_pe_init(problem, sys, 2, 1, FluxMode::Fused);
  EXPECT_EQ(init.cw.size(), 5u);
  EXPECT_EQ(init.cz.size(), 4u);
  EXPECT_EQ(init.p0.size(), 5u);
  EXPECT_TRUE(init.lambda.empty()); // fused mode folds mobility into coefs
  EXPECT_TRUE(init.dirichlet_z.empty());
}

TEST(BuildPeInit, BoundaryPesHaveZeroOutwardCoefficients) {
  const auto problem = FlowProblem::quarter_five_spot(4, 3, 2, 5);
  const auto sys = problem.discretize<f32>();
  const PeInit west_edge = build_pe_init(problem, sys, 0, 1, FluxMode::Fused);
  for (f32 c : west_edge.cw) EXPECT_EQ(c, 0.0f);
  const PeInit east_edge = build_pe_init(problem, sys, 3, 1, FluxMode::Fused);
  for (f32 c : east_edge.ce) EXPECT_EQ(c, 0.0f);
  const PeInit north_edge = build_pe_init(problem, sys, 1, 0, FluxMode::Fused);
  for (f32 c : north_edge.cn) EXPECT_EQ(c, 0.0f); // fabric north = y-1
  const PeInit south_edge = build_pe_init(problem, sys, 1, 2, FluxMode::Fused);
  for (f32 c : south_edge.cs) EXPECT_EQ(c, 0.0f); // fabric south = y+1
}

TEST(BuildPeInit, CoefficientsAreSymmetricAcrossPes) {
  // The east coefficient of PE (x, y) equals the west coefficient of
  // PE (x+1, y): both are Upsilon * lambda_avg of the shared face.
  const auto problem = FlowProblem::quarter_five_spot(4, 4, 3, 11);
  const auto sys = problem.discretize<f32>();
  const PeInit a = build_pe_init(problem, sys, 1, 2, FluxMode::Fused);
  const PeInit b = build_pe_init(problem, sys, 2, 2, FluxMode::Fused);
  for (std::size_t z = 0; z < a.ce.size(); ++z) EXPECT_EQ(a.ce[z], b.cw[z]);
  // Same for the fabric south/north pair.
  const PeInit c = build_pe_init(problem, sys, 1, 1, FluxMode::Fused);
  const PeInit d = build_pe_init(problem, sys, 1, 2, FluxMode::Fused);
  for (std::size_t z = 0; z < c.cs.size(); ++z) EXPECT_EQ(c.cs[z], d.cn[z]);
}

TEST(BuildPeInit, DirichletColumnsListEveryZ) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 4);
  const auto sys = problem.discretize<f32>();
  const PeInit injector = build_pe_init(problem, sys, 0, 0, FluxMode::Fused);
  ASSERT_EQ(injector.dirichlet_z.size(), 4u);
  for (u16 z = 0; z < 4; ++z) EXPECT_EQ(injector.dirichlet_z[z], z);
  const PeInit interior = build_pe_init(problem, sys, 1, 1, FluxMode::Fused);
  EXPECT_TRUE(interior.dirichlet_z.empty());
}

TEST(BuildPeInit, P0CarriesBoundaryValues) {
  const auto problem = FlowProblem::homogeneous_column(3, 3, 2);
  const auto sys = problem.discretize<f32>();
  const PeInit injector = build_pe_init(problem, sys, 0, 0, FluxMode::Fused);
  for (f32 p : injector.p0) EXPECT_EQ(p, 1.0f);
  const PeInit producer = build_pe_init(problem, sys, 2, 2, FluxMode::Fused);
  for (f32 p : producer.p0) EXPECT_EQ(p, 0.0f);
}

TEST(BuildPeInit, OnTheFlyKeepsRawTransmissibilityAndMobility) {
  const auto problem = FlowProblem::quarter_five_spot(3, 3, 3, 21);
  const auto sys = problem.discretize<f32>();
  const PeInit otf = build_pe_init(problem, sys, 1, 1, FluxMode::OnTheFly);
  const PeInit fused = build_pe_init(problem, sys, 1, 1, FluxMode::Fused);
  EXPECT_EQ(otf.lambda.size(), 3u);
  // Fused = raw * lambda_avg; with uniform lambda = 1/mu = 1 they happen to
  // match, so use the relation explicitly.
  for (std::size_t z = 0; z < 3; ++z) {
    const f32 lambda_avg = otf.lambda[z]; // uniform mobility field
    EXPECT_NEAR(fused.ce[z], otf.ce[z] * lambda_avg, 1e-6f);
  }
}

TEST(BuildPeInit, RejectsOutOfRangeCoordinates) {
  const auto problem = FlowProblem::homogeneous_column(2, 2, 2);
  const auto sys = problem.discretize<f32>();
  EXPECT_THROW(build_pe_init(problem, sys, 2, 0, FluxMode::Fused), Error);
  EXPECT_THROW(build_pe_init(problem, sys, 0, -1, FluxMode::Fused), Error);
}

TEST(LayoutNames, ToStringCoversAll) {
  EXPECT_STREQ(to_string(FluxMode::Fused), "fused");
  EXPECT_STREQ(to_string(FluxMode::OnTheFly), "on-the-fly");
  EXPECT_NE(std::string(to_string(LayoutKind::Optimized)).find("optimized"),
            std::string::npos);
  EXPECT_NE(std::string(to_string(LayoutKind::Naive)).find("naive"),
            std::string::npos);
}

} // namespace
} // namespace fvdf::core
