// Config parser and scenario-driver tests: INI parsing semantics, schema
// validation (unknown keys rejected), backend selection, end-to-end
// steady/transient runs with artifact output.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/scenario.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "mesh/vtk.hpp"

namespace fvdf {
namespace {

// ---------- Config ----------

TEST(Config, ParsesSectionsKeysCommentsAndWhitespace) {
  const auto config = Config::parse_string(R"(
# top comment
top = 1
[mesh]
nx = 12       ; trailing comment
  ny=7
[solver]
backend = host-pcg
)");
  EXPECT_EQ(config.get_i64("top"), 1);
  EXPECT_EQ(config.get_i64("mesh.nx"), 12);
  EXPECT_EQ(config.get_i64("mesh.ny"), 7);
  EXPECT_EQ(config.get_string("solver.backend"), "host-pcg");
  EXPECT_TRUE(config.has("mesh.nx"));
  EXPECT_FALSE(config.has("mesh.nz"));
}

TEST(Config, TypedGettersAndFallbacks) {
  const auto config = Config::parse_string("[a]\nx = 2.5\nflag = yes\nn = 9\n");
  EXPECT_DOUBLE_EQ(config.get_f64("a.x"), 2.5);
  EXPECT_TRUE(config.get_bool("a.flag"));
  EXPECT_EQ(config.get_i64("a.n"), 9);
  EXPECT_EQ(config.get_i64("a.missing", 42), 42);
  EXPECT_DOUBLE_EQ(config.get_f64("a.missing", 1.5), 1.5);
  EXPECT_FALSE(config.get_bool("a.missing", false));
  EXPECT_EQ(config.get_string("a.missing", "zzz"), "zzz");
}

TEST(Config, BooleanSpellings) {
  const auto config = Config::parse_string(
      "a = true\nb = ON\nc = 1\nd = false\ne = No\nf = 0\ng = maybe\n");
  EXPECT_TRUE(config.get_bool("a"));
  EXPECT_TRUE(config.get_bool("b"));
  EXPECT_TRUE(config.get_bool("c"));
  EXPECT_FALSE(config.get_bool("d"));
  EXPECT_FALSE(config.get_bool("e"));
  EXPECT_FALSE(config.get_bool("f"));
  EXPECT_THROW(config.get_bool("g"), Error);
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(Config::parse_string("[unclosed\n"), Error);
  EXPECT_THROW(Config::parse_string("novalue\n"), Error);
  EXPECT_THROW(Config::parse_string("a = 1\na = 2\n"), Error); // duplicate
  EXPECT_THROW(Config::parse_string("[]\n"), Error);
  const auto config = Config::parse_string("x = abc\n");
  EXPECT_THROW(config.get_i64("x"), Error);
  EXPECT_THROW(config.get_f64("x"), Error);
  EXPECT_THROW(config.get_string("missing"), Error);
}

TEST(Config, KeysAreSorted) {
  const auto config = Config::parse_string("[b]\nz = 1\n[a]\ny = 2\n");
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a.y");
  EXPECT_EQ(keys[1], "b.z");
}

// ---------- scenario building ----------

TEST(Scenario, DefaultsAreSane) {
  const auto scenario = app::scenario_from_config(Config::parse_string(""));
  EXPECT_EQ(scenario.problem->mesh().nx(), 8);
  EXPECT_EQ(scenario.backend, app::Backend::HostPcg);
  EXPECT_FALSE(scenario.transient);
}

TEST(Scenario, UnknownKeysAreRejected) {
  EXPECT_THROW(app::scenario_from_config(
                   Config::parse_string("[mesh]\nnx = 4\nxn = 4\n")),
               Error);
}

TEST(Scenario, RateInjectorBuildsSources) {
  const auto scenario = app::scenario_from_config(Config::parse_string(
      "[mesh]\nnx = 6\nny = 6\nnz = 2\n[wells]\ninjector_kind = rate\nrate = 3.0\n"));
  ASSERT_TRUE(scenario.problem->has_sources());
  f64 total = 0;
  for (f64 q : scenario.problem->sources()) total += q;
  EXPECT_NEAR(total, 3.0, 1e-12);
  // Only the producer column is pressure-pinned.
  EXPECT_EQ(scenario.problem->bc().size(), 2u);
  std::ostringstream log;
  const auto outcome = app::run_scenario(scenario, log);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.residual_norm, 1e-6);
}

TEST(Scenario, UnknownInjectorKindRejected) {
  EXPECT_THROW(app::scenario_from_config(
                   Config::parse_string("[wells]\ninjector_kind = magic\n")),
               Error);
}

TEST(Scenario, UnknownGeomodelAndBackendRejected) {
  EXPECT_THROW(app::scenario_from_config(
                   Config::parse_string("[perm]\nkind = granite\n")),
               Error);
  EXPECT_THROW(app::scenario_from_config(
                   Config::parse_string("[solver]\nbackend = quantum\n")),
               Error);
}

TEST(Scenario, GeomodelKindsBuild) {
  for (const char* kind : {"homogeneous", "layered", "lognormal", "channelized"}) {
    std::ostringstream text;
    text << "[mesh]\nnx = 6\nny = 6\nnz = 4\n[perm]\nkind = " << kind << "\n";
    const auto scenario = app::scenario_from_config(Config::parse_string(text.str()));
    EXPECT_EQ(scenario.problem->mesh().cell_count(), 144);
  }
}

// ---------- end-to-end runs ----------

app::Scenario small_scenario(const std::string& extra) {
  return app::scenario_from_config(Config::parse_string(
      "[mesh]\nnx = 8\nny = 8\nnz = 3\n[solver]\ntolerance = 1e-20\n" + extra));
}

TEST(Scenario, SteadyRunsOnAllBackends) {
  std::vector<std::vector<f64>> solutions;
  for (const char* backend : {"host", "host-pcg", "dataflow"}) {
    auto scenario = small_scenario(std::string("[output]\nheatmap = false\n"));
    scenario.backend = backend == std::string("host")      ? app::Backend::HostCg
                       : backend == std::string("host-pcg") ? app::Backend::HostPcg
                                                            : app::Backend::Dataflow;
    if (scenario.backend == app::Backend::Dataflow) scenario.tolerance = 1e-13;
    std::ostringstream log;
    const auto outcome = app::run_scenario(scenario, log);
    EXPECT_TRUE(outcome.converged) << backend;
    EXPECT_LT(outcome.residual_norm, 1e-4) << backend;
    solutions.push_back(outcome.pressure);
    EXPECT_NE(log.str().find("iterations"), std::string::npos);
  }
  // All backends agree on the physics.
  for (std::size_t i = 0; i < solutions[0].size(); ++i) {
    EXPECT_NEAR(solutions[1][i], solutions[0][i], 1e-6);
    EXPECT_NEAR(solutions[2][i], solutions[0][i], 1e-4);
  }
}

TEST(Scenario, TransientHostAndDeviceRun) {
  for (const bool device : {false, true}) {
    auto scenario = small_scenario("[transient]\nenabled = true\ndt = 0.5\nsteps = 3\n");
    scenario.backend = device ? app::Backend::Dataflow : app::Backend::HostPcg;
    if (device) scenario.tolerance = 1e-14;
    std::ostringstream log;
    const auto outcome = app::run_scenario(scenario, log);
    EXPECT_TRUE(outcome.converged);
    EXPECT_GT(outcome.iterations, 0u);
  }
}

TEST(Scenario, WritesVtkAndCheckpointArtifacts) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string vtk = (dir / "fvdf_app_test.vtk").string();
  const std::string ckpt = (dir / "fvdf_app_test.ckpt").string();
  auto scenario = small_scenario("");
  scenario.vtk_path = vtk;
  scenario.checkpoint_path = ckpt;
  std::ostringstream log;
  const auto outcome = app::run_scenario(scenario, log);
  ASSERT_TRUE(outcome.converged);

  std::ifstream vtk_in(vtk);
  std::string first_line;
  std::getline(vtk_in, first_line);
  EXPECT_EQ(first_line, "# vtk DataFile Version 3.0");

  const auto checkpoint = load_checkpoint(ckpt);
  EXPECT_EQ(checkpoint.nx, 8);
  EXPECT_EQ(checkpoint.field("pressure").size(), outcome.pressure.size());
  for (std::size_t i = 0; i < outcome.pressure.size(); ++i)
    EXPECT_EQ(checkpoint.field("pressure")[i], outcome.pressure[i]);
  std::filesystem::remove(vtk);
  std::filesystem::remove(ckpt);
}

TEST(Vtk, ValidatesInputs) {
  const CartesianMesh3D mesh(2, 2, 2);
  std::vector<f64> good(8, 1.0), bad(5, 1.0);
  const auto path =
      (std::filesystem::temp_directory_path() / "fvdf_vtk_test.vtk").string();
  EXPECT_THROW(write_vtk(path, mesh, {{"p", &bad}}), Error);
  EXPECT_THROW(write_vtk(path, mesh, {{"bad name", &good}}), Error);
  EXPECT_THROW(write_vtk(path, mesh, {}), Error);
  EXPECT_NO_THROW(write_vtk(path, mesh, {{"p", &good}, {"k", &good}}));
  std::filesystem::remove(path);
}

} // namespace
} // namespace fvdf
