// PE memory arena tests: capacity accounting, OOM diagnostics, alignment,
// bounds checking — the machinery behind the paper's 48 KiB budget
// (Sec. III-E1).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "wse/dsd.hpp"
#include "wse/memory.hpp"

namespace fvdf::wse {
namespace {

TEST(PeMemory, DefaultCapacityIs48KiB) {
  PeMemory mem;
  EXPECT_EQ(mem.capacity_bytes(), 48u * 1024);
  EXPECT_EQ(mem.used_bytes(), 0u);
  EXPECT_EQ(mem.free_bytes(), 48u * 1024 - mem.reserved_bytes());
}

TEST(PeMemory, AllocationsAccumulate) {
  PeMemory mem(4096, 0);
  const MemSpan a = mem.alloc_f32("a", 100);
  const MemSpan b = mem.alloc_f32("b", 50);
  EXPECT_EQ(a.length, 100u);
  EXPECT_EQ(b.length, 50u);
  EXPECT_EQ(mem.used_bytes(), 600u);
  EXPECT_NE(a.offset_words, b.offset_words);
}

TEST(PeMemory, ByteAllocationsAreFourByteAligned) {
  PeMemory mem(4096, 0);
  (void)mem.alloc_bytes("mask", 3); // rounds to 4
  const MemSpan next = mem.alloc_f32("x", 1);
  EXPECT_EQ(next.offset_words * 4 % 4, 0u);
  EXPECT_EQ(mem.used_bytes(), 8u);
}

TEST(PeMemory, OverflowThrowsWithAllocationMap) {
  PeMemory mem(1024, 0);
  (void)mem.alloc_f32("big", 200); // 800 B
  try {
    (void)mem.alloc_f32("too-much", 100); // 400 B > 224 left
    FAIL() << "expected overflow";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("too-much"), std::string::npos);
    EXPECT_NE(what.find("big"), std::string::npos); // map lists prior allocs
  }
}

TEST(PeMemory, ReserveShrinksBudget) {
  PeMemory mem(1024, 1000);
  EXPECT_EQ(mem.free_bytes(), 24u);
  EXPECT_THROW((void)mem.alloc_f32("x", 10), Error);
  EXPECT_NO_THROW((void)mem.alloc_f32("y", 6));
}

TEST(PeMemory, ReserveMustBeBelowCapacity) {
  EXPECT_THROW(PeMemory(1024, 1024), Error);
}

TEST(PeMemory, LoadStoreRoundTrip) {
  PeMemory mem(1024, 0);
  const MemSpan span = mem.alloc_f32("x", 4);
  mem.store(span.offset_words + 2, 3.5f);
  EXPECT_FLOAT_EQ(mem.load(span.offset_words + 2), 3.5f);
}

TEST(PeMemory, OutOfBoundsAccessThrows) {
  PeMemory mem(1024, 0);
  (void)mem.alloc_f32("x", 4);
  EXPECT_THROW(mem.load(100), Error);
  EXPECT_THROW(mem.store(4, 0.0f), Error); // one past the allocation
}

TEST(PeMemory, ByteAccessors) {
  PeMemory mem(1024, 0);
  const MemSpan span = mem.alloc_bytes("mask", 8);
  mem.store_byte(span.offset_words + 5, 0xab);
  EXPECT_EQ(mem.load_byte(span.offset_words + 5), 0xab);
  EXPECT_THROW(mem.load_byte(999), Error);
}

// ---------- DSD engine on top of the arena ----------

class DsdFixture : public ::testing::Test {
protected:
  DsdFixture() : mem_(8192, 0), engine_(mem_, counters_, timing_, cycles_) {}

  Dsd alloc(const std::string& name, std::vector<f32> values) {
    const MemSpan span = mem_.alloc_f32(name, static_cast<u32>(values.size()));
    for (u32 i = 0; i < span.length; ++i)
      mem_.store(span.offset_words + i, values[i]);
    return dsd(span);
  }

  std::vector<f32> read(Dsd d) {
    std::vector<f32> out(d.length);
    for (u32 i = 0; i < d.length; ++i)
      out[i] = mem_.load(static_cast<u32>(d.offset + static_cast<i64>(i) * d.stride));
    return out;
  }

  PeMemory mem_;
  OpCounters counters_;
  TimingParams timing_;
  f64 cycles_ = 0;
  DsdEngine engine_;
};

TEST_F(DsdFixture, ElementwiseOpsComputeCorrectly) {
  const Dsd a = alloc("a", {1, 2, 3, 4});
  const Dsd b = alloc("b", {10, 20, 30, 40});
  const Dsd out = alloc("out", {0, 0, 0, 0});

  engine_.fadds(out, a, b);
  EXPECT_EQ(read(out), (std::vector<f32>{11, 22, 33, 44}));
  engine_.fsubs(out, b, a);
  EXPECT_EQ(read(out), (std::vector<f32>{9, 18, 27, 36}));
  engine_.fmuls(out, a, b);
  EXPECT_EQ(read(out), (std::vector<f32>{10, 40, 90, 160}));
  engine_.fnegs(out, a);
  EXPECT_EQ(read(out), (std::vector<f32>{-1, -2, -3, -4}));
  engine_.fmovs(out, b);
  EXPECT_EQ(read(out), (std::vector<f32>{10, 20, 30, 40}));
  engine_.fmovs_imm(out, 7.0f);
  EXPECT_EQ(read(out), (std::vector<f32>{7, 7, 7, 7}));
  engine_.fmuls_imm(out, a, 3.0f);
  EXPECT_EQ(read(out), (std::vector<f32>{3, 6, 9, 12}));
}

TEST_F(DsdFixture, FmaVariants) {
  const Dsd acc = alloc("acc", {1, 1, 1});
  const Dsd a = alloc("a", {2, 3, 4});
  const Dsd b = alloc("b", {10, 10, 10});
  const Dsd out = alloc("out", {0, 0, 0});
  engine_.fmacs(out, acc, a, b);
  EXPECT_EQ(read(out), (std::vector<f32>{21, 31, 41}));
  engine_.fmacs_imm(out, acc, a, -1.0f);
  EXPECT_EQ(read(out), (std::vector<f32>{-1, -2, -3}));
}

TEST_F(DsdFixture, DotProduct) {
  const Dsd a = alloc("a", {1, 2, 3});
  const Dsd b = alloc("b", {4, 5, 6});
  EXPECT_FLOAT_EQ(engine_.fdots(a, b), 32.0f);
}

TEST_F(DsdFixture, StridedAndShiftedViews) {
  const Dsd a = alloc("a", {1, 2, 3, 4, 5, 6});
  // Shifted prefix views, the idiom the z-face flux uses.
  const Dsd lo = a.take(5);        // {1..5}
  const Dsd hi = a.drop(1);        // {2..6}
  const Dsd out = alloc("out", {0, 0, 0, 0, 0});
  engine_.fsubs(out, hi, lo);
  EXPECT_EQ(read(out), (std::vector<f32>{1, 1, 1, 1, 1}));

  // Stride-2 view picks every other element.
  Dsd even{a.offset, 3, 2};
  EXPECT_EQ(read(even), (std::vector<f32>{1, 3, 5}));
}

TEST_F(DsdFixture, AliasedInPlaceUpdateIsElementOrdered) {
  const Dsd a = alloc("a", {1, 2, 3, 4});
  engine_.fmuls_imm(a, a, 2.0f); // in-place scale
  EXPECT_EQ(read(a), (std::vector<f32>{2, 4, 6, 8}));
}

TEST_F(DsdFixture, LengthMismatchThrows) {
  const Dsd a = alloc("a", {1, 2, 3});
  const Dsd b = alloc("b", {1, 2});
  const Dsd out = alloc("out", {0, 0, 0});
  EXPECT_THROW(engine_.fadds(out, a, b), Error);
}

TEST_F(DsdFixture, OpsChargeCyclesAndCounters) {
  const Dsd a = alloc("a", std::vector<f32>(100, 1.0f));
  const Dsd out = alloc("out", std::vector<f32>(100, 0.0f));
  const f64 t0 = cycles_;
  engine_.fmuls(out, a, a);
  EXPECT_GT(cycles_, t0);
  EXPECT_EQ(counters_.count(Opcode::FMUL), 100u);
  EXPECT_EQ(counters_.total_flops(), 100u);
  // FMUL: 2 loads + 1 store per element.
  EXPECT_EQ(counters_.memory_loads(), 200u);
  EXPECT_EQ(counters_.memory_stores(), 100u);
}

TEST_F(DsdFixture, ComputeScaleZeroFreezesTime) {
  timing_.compute_scale = 0.0;
  const Dsd a = alloc("a", std::vector<f32>(64, 2.0f));
  const Dsd out = alloc("out", std::vector<f32>(64, 0.0f));
  const f64 t0 = cycles_;
  engine_.fadds(out, a, a);
  EXPECT_EQ(cycles_, t0); // Table IV's FLOP-free run costs no compute time
  EXPECT_EQ(read(out)[0], 4.0f); // but the values are still computed
}

TEST_F(DsdFixture, ScalarHelpersCountSingleOps) {
  EXPECT_FLOAT_EQ(engine_.fadds_scalar(1.5f, 2.5f), 4.0f);
  EXPECT_FLOAT_EQ(engine_.fmuls_scalar(3.0f, 4.0f), 12.0f);
  EXPECT_EQ(counters_.count(Opcode::FADD), 1u);
  EXPECT_EQ(counters_.count(Opcode::FMUL), 1u);
}

TEST_F(DsdFixture, SubViewBoundsAreChecked) {
  const MemSpan span = mem_.alloc_f32("x", 10);
  EXPECT_NO_THROW(dsd(span, 2, 8));
  EXPECT_THROW(dsd(span, 5, 6), Error);
}

} // namespace
} // namespace fvdf::wse
