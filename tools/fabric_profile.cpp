// fabric_profile — run one instrumented dataflow solve and emit the full
// telemetry bundle (docs/observability.md):
//
//   metrics.json    counters, per-phase cycle totals, histograms
//   trace.json      Chrome trace events (load in Perfetto / about:tracing)
//   progress.json   residual history with per-iteration cycle timings
//   heatmap_*.ppm   per-PE traffic / stall / occupancy / delivery maps
//   heatmap_*.csv   the same grids as numbers
//   links.csv       per-PE, per-link word and message counts
//
//   ./tools/fabric_profile --fabric 20x20 --nz 8 --out profile
//   ./tools/fabric_profile --solver chebyshev --level metrics
//   ./tools/fabric_profile --level off --reps 5     # timing mode, no bundle
//   ./tools/fabric_profile --host --sim-threads 4   # + host-side profiler
//
// Every file is deterministic: the same scenario produces byte-identical
// output at any --sim-threads value. At --level off no session is attached
// and no bundle is written — only per-rep wall time is printed (with a
// min/median/stddev summary when --reps > 1), which is what the CI
// telemetry-overhead gate compares across build configs.
//
// --host additionally attaches the host-side execution profiler
// (docs/observability.md, "Host profiling"): worker timelines, per-shard
// stall attribution, the bytecode hot-spot table and the critical-path
// speedup bound, written as host_profile.json + host_trace.json into the
// output directory (at any --level, including off — the host profile is
// wall-clock data and lives outside the deterministic bundle). With
// --reps > 1 the profile covers the last rep.
//
// Exit status: 0 on success, 2 on usage / setup errors.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "solver/chebyshev.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/session.hpp"
#include "wse/fabric.hpp"

using namespace fvdf;

namespace {

bool parse_fabric(const std::string& arg, i64& width, i64& height) {
  const auto x = arg.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= arg.size()) return false;
  width = std::strtol(arg.c_str(), nullptr, 10);
  height = std::strtol(arg.c_str() + x + 1, nullptr, 10);
  return width >= 1 && height >= 1;
}

void print_summary(const telemetry::Session& session,
                   const core::DataflowResult& result) {
  const auto& info = session.run_info();
  std::cout << "solve: " << result.iterations << " iterations, "
            << (result.converged ? "converged" : "NOT converged") << ", "
            << info.total_cycles << " cycles (" << info.seconds * 1e3
            << " ms device time)\n";
  const auto phases = session.reference_phase_cycles();
  std::cout << "phase breakdown on PE (0,0):\n";
  for (u32 p = 0; p < telemetry::kNumPhases; ++p) {
    if (phases[p] == 0) continue;
    std::cout << "  " << to_string(static_cast<telemetry::Phase>(p)) << ": "
              << phases[p] << " cycles ("
              << 100.0 * phases[p] / info.total_cycles << "%)\n";
  }
}

// min/median/mean/stddev over the per-rep wall times: a single mean hides
// scheduler noise, and the overhead gates compare medians.
void print_rep_stats(std::vector<f64> walls_ms) {
  std::sort(walls_ms.begin(), walls_ms.end());
  const std::size_t n = walls_ms.size();
  const f64 min = walls_ms.front();
  const f64 median = n % 2 == 1 ? walls_ms[n / 2]
                                : 0.5 * (walls_ms[n / 2 - 1] + walls_ms[n / 2]);
  f64 mean = 0;
  for (f64 w : walls_ms) mean += w;
  mean /= static_cast<f64>(n);
  f64 var = 0;
  for (f64 w : walls_ms) var += (w - mean) * (w - mean);
  const f64 stddev = n > 1 ? std::sqrt(var / static_cast<f64>(n - 1)) : 0.0;
  std::cout << "reps: " << n << "  min " << min << " ms  median " << median
            << " ms  mean " << mean << " ms  stddev " << stddev << " ms\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string fabric = "20x20";
  i64 nz = 8;
  i64 iters = 50;
  f64 tolerance = 0.0;
  std::string solver = "cg";
  std::string level = "trace";
  i64 pe_stride = 1;
  i64 event_sample = 1;
  i64 sim_threads = 1;
  i64 reps = 1;
  bool host = false;
  std::string out = "fabric_profile_out";

  CliParser cli("fabric_profile",
                "Profile a dataflow solve: phase spans, per-PE/per-link "
                "metrics, heatmaps and a Perfetto-loadable Chrome trace.");
  cli.add_string("fabric", &fabric, "fabric extent WxH (one PE per column)");
  cli.add_i64("nz", &nz, "column depth (cells per PE)");
  cli.add_i64("iters", &iters, "max solver iterations");
  cli.add_f64("tolerance", &tolerance, "epsilon on the global r^T r (0 = run to iters)");
  cli.add_string("solver", &solver, "device program: cg | chebyshev");
  cli.add_string("level", &level, "telemetry level: off | metrics | trace");
  cli.add_i64("pe-stride", &pe_stride, "phase-mark sampling stride over PEs");
  cli.add_i64("event-sample", &event_sample, "keep every Nth raw event at level trace");
  cli.add_i64("sim-threads", &sim_threads, "simulator worker threads (0 = hw)");
  cli.add_i64("reps", &reps, "solve repetitions; wall time printed per rep");
  cli.add_flag("host", &host,
               "attach the host-side profiler (worker timelines, stall "
               "attribution, critical-path bound) and write host_profile.json");
  cli.add_string("out", &out, "output directory for the bundle");

  try {
    if (!cli.parse(argc, argv)) return 0;

    i64 width = 0, height = 0;
    if (!parse_fabric(fabric, width, height)) {
      std::cerr << "error: bad --fabric '" << fabric << "' (expected WxH)\n";
      return 2;
    }
    if (nz < 1 || iters < 1 || pe_stride < 1 || event_sample < 1 ||
        sim_threads < 0 || reps < 1) {
      std::cerr << "error: --nz/--iters/--pe-stride/--event-sample/--reps must be >= 1\n";
      return 2;
    }
    const bool chebyshev = solver == "chebyshev";
    if (!chebyshev && solver != "cg") {
      std::cerr << "error: unknown --solver '" << solver << "'\n";
      return 2;
    }
    const bool off = level == "off";
    if (!off && level != "metrics" && level != "trace") {
      std::cerr << "error: unknown --level '" << level << "'\n";
      return 2;
    }

    telemetry::TelemetryConfig tconfig;
    tconfig.level =
        level == "trace" ? telemetry::Level::Trace : telemetry::Level::Metrics;
    tconfig.sampling.pe_stride = static_cast<u32>(pe_stride);
    tconfig.sampling.event_sample_period = static_cast<u32>(event_sample);

    const auto problem = FlowProblem::homogeneous_column(width, height, nz);
    // At --level off no session is attached at all: the fabric's telemetry
    // hooks see a null collector, which is the configuration the CI
    // overhead gate times (scripts/check_telemetry_overhead.sh).
    std::optional<telemetry::Session> session;
    telemetry::HostProfiler profiler;
    if (host && !wse::Fabric::host_profiling_compiled())
      std::cerr << "warning: --host requested but this build has "
                   "-DFVDF_TELEMETRY=OFF; no host profile will be captured\n";
    core::DataflowResult result;
    std::vector<f64> walls_ms;
    walls_ms.reserve(static_cast<std::size_t>(reps));
    for (i64 rep = 0; rep < reps; ++rep) {
      if (!off) session.emplace(tconfig); // finalize() is once-per-run
      const auto t0 = std::chrono::steady_clock::now();
      if (chebyshev) {
        const auto sys = problem.discretize<f64>();
        const MatrixFreeOperator<f64> op(sys);
        core::ChebyshevDeviceConfig config;
        config.bounds = estimate_spectral_bounds<f64>(
            [&](const f64* in, f64* o) { op.apply(in, o); },
            static_cast<std::size_t>(sys.cell_count()));
        config.max_iterations = static_cast<u64>(iters);
        config.tolerance = static_cast<f32>(tolerance);
        config.sim_threads = static_cast<u32>(sim_threads);
        config.telemetry = session ? &*session : nullptr;
        config.host_profiler = host ? &profiler : nullptr;
        result = core::solve_dataflow_chebyshev(problem, config);
      } else {
        core::DataflowConfig config;
        config.max_iterations = static_cast<u64>(iters);
        config.tolerance = static_cast<f32>(tolerance);
        config.sim_threads = static_cast<u32>(sim_threads);
        config.telemetry = session ? &*session : nullptr;
        config.host_profiler = host ? &profiler : nullptr;
        result = core::solve_dataflow(problem, config);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const f64 ms = std::chrono::duration<f64, std::milli>(t1 - t0).count();
      walls_ms.push_back(ms);
      std::cout << "rep " << rep << ": " << ms << " ms wall, "
                << result.iterations << " iterations\n";
    }
    if (walls_ms.size() > 1) print_rep_stats(walls_ms);

    if (session) {
      print_summary(*session, result);
      const auto written = session->write_bundle(out);
      std::cout << "bundle (" << written.size() << " files):\n";
      for (const std::string& path : written) std::cout << "  " << path << '\n';
    }
    if (host && profiler.captured()) {
      profiler.print_summary(std::cout, static_cast<u32>(sim_threads));
      const auto written = profiler.write(out);
      std::cout << "host profile (" << written.size() << " files):\n";
      for (const std::string& path : written) std::cout << "  " << path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
