// fabric_lint — static verification of WSE device programs from the
// command line (docs/static_verification.md). Three modes:
//
//   ./tools/fabric_lint                       # built-in suite: the four
//                                             # shipped CSL collectives
//   ./tools/fabric_lint --fabric 40x40        # same suite, other shape
//   ./tools/fabric_lint --scenario case.ini   # the device program a
//                                             # dataflow scenario would load
//   ./tools/fabric_lint --demo-defects        # seeded-defect programs, to
//                                             # see the diagnostics fire
//   ./tools/fabric_lint --dump-program        # disassemble every distinct
//                                             # CG/Chebyshev bytecode program
//                                             # the fabric would load
//
// Exit status: 0 when every verified program is clean (for --demo-defects:
// when every defect is correctly rejected), 1 on verification errors,
// 2 on usage / setup errors.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "analysis/fixtures.hpp"
#include "analysis/verifier.hpp"
#include "app/scenario.hpp"
#include "common/error.hpp"
#include "core/bytecode_program.hpp"
#include "core/solver.hpp"
#include "wse/bytecode.hpp"

using namespace fvdf;

namespace {

void usage() {
  std::cerr << "usage: fabric_lint [--fabric WxH] [--nz N]\n"
               "       fabric_lint --scenario <case.ini>\n"
               "       fabric_lint --demo-defects\n"
               "       fabric_lint --dump-program [--fabric WxH] [--nz N]\n";
}

bool parse_fabric(const std::string& arg, i64& width, i64& height) {
  const auto x = arg.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= arg.size()) return false;
  width = std::strtol(arg.c_str(), nullptr, 10);
  height = std::strtol(arg.c_str() + x + 1, nullptr, 10);
  return width >= 1 && height >= 1;
}

/// Verifies one named program and prints its report; returns ok().
bool lint(const std::string& name, i64 width, i64 height,
          const wse::ProgramFactory& factory) {
  const auto report = analysis::verify_program(width, height, factory);
  std::cout << "--- " << name << " on " << width << "x" << height
            << " ---\n" << report.summary() << '\n';
  return report.ok();
}

int lint_suite(i64 width, i64 height, u32 nz) {
  namespace fx = analysis::fixtures;
  bool ok = true;
  ok &= lint("halo exchange", width, height, fx::halo_program(nz));
  ok &= lint("all-reduce", width, height, fx::allreduce_program());
  ok &= lint("eastward exchange", width, height, fx::eastward_program(nz));
  const wse::PeCoord source{width / 2, height / 2};
  ok &= lint("any-source broadcast (root " + std::to_string(source.x) + "," +
                 std::to_string(source.y) + ")",
             width, height, fx::any_source_program(source, nz));
  std::cout << (ok ? "fabric_lint: all programs verified clean\n"
                   : "fabric_lint: FAIL — see diagnostics above\n");
  return ok ? 0 : 1;
}

int lint_scenario(const std::string& path) {
  const auto config = Config::parse_file(path);
  const auto scenario = app::scenario_from_config(config);
  if (scenario.backend != app::Backend::Dataflow) {
    std::cerr << "error: scenario backend is " << to_string(scenario.backend)
              << "; only dataflow scenarios have a device program to verify\n";
    return 2;
  }
  core::DataflowConfig device;
  device.tolerance = static_cast<f32>(scenario.tolerance);
  device.max_iterations = scenario.max_iterations;
  device.jacobi_precondition = scenario.transient;
  const auto report = core::verify_dataflow(*scenario.problem, device);
  std::cout << "--- CG device program for " << path << " ---\n"
            << report.summary() << '\n';
  return report.ok() ? 0 : 1;
}

/// Each seeded defect must be rejected — and by at least one error of its
/// advertised check — for the demo to "pass".
int demo_defects() {
  namespace fx = analysis::fixtures;
  struct Demo {
    const char* name;
    analysis::Check check;
    i64 width, height;
    wse::ProgramFactory factory;
  };
  const Demo demos[] = {
      {"edge route", analysis::Check::RouteCompleteness, 3, 1,
       fx::edge_route_defect()},
      {"credit cycle", analysis::Check::DeadlockFreedom, 2, 1,
       fx::credit_cycle_defect()},
      {"missing handler", analysis::Check::DeliveryLiveness, 2, 1,
       fx::missing_handler_defect()},
      {"arena overflow", analysis::Check::MemoryBudget, 1, 1,
       fx::arena_overflow_defect()},
  };
  bool ok = true;
  for (const auto& demo : demos) {
    const auto report =
        analysis::verify_program(demo.width, demo.height, demo.factory);
    std::cout << "--- seeded defect: " << demo.name << " ---\n"
              << report.summary() << '\n';
    bool tripped = false;
    for (const auto& diag : report.diagnostics)
      tripped |= diag.check == demo.check &&
                 diag.severity == analysis::Severity::Error;
    if (!tripped) {
      std::cout << "UNEXPECTED: defect was not rejected by "
                << analysis::to_string(demo.check) << '\n';
      ok = false;
    }
  }
  std::cout << (ok ? "fabric_lint: all seeded defects correctly rejected\n"
                   : "fabric_lint: FAIL — a defect slipped through\n");
  return ok ? 0 : 1;
}

/// Disassembles every distinct bytecode program a WxH solve would load.
/// PEs whose lowering inputs coincide share one Program (the same
/// ProgramCache::key_for dedup the solver uses), so the dump lists each
/// shape once with a representative coordinate. Static lint diagnostics
/// for the encoding itself gate the exit status.
int dump_programs(i64 width, i64 height, u32 nz) {
  const wse::PeMemoryParams mem;
  bool ok = true;

  struct Lowering {
    const char* name;
    std::function<std::shared_ptr<const wse::bc::Program>(
        const core::LoweringSite&)> lower;
  };
  core::CgPeConfig cg;
  cg.nz = nz;
  cg.tolerance = 1e-6f;
  core::ChebyshevPeConfig cheb;
  cheb.nz = nz;
  cheb.tolerance = 1e-6f;
  cheb.lambda_min = 0.05f;
  cheb.lambda_max = 12.0f;
  const Lowering lowerings[] = {
      {"cg", [&](const core::LoweringSite& s) { return core::lower_cg(cg, s); }},
      {"chebyshev", [&](const core::LoweringSite& s) {
         return core::lower_chebyshev(cheb, s);
       }}};

  for (const auto& lowering : lowerings) {
    std::map<core::ProgramCache::Key, wse::PeCoord> distinct;
    for (i64 y = 0; y < height; ++y)
      for (i64 x = 0; x < width; ++x) {
        const auto site = core::plan_site({x, y}, width, height, mem, nz,
                                          core::FluxMode::Fused,
                                          /*dirichlet_count=*/0,
                                          /*jacobi=*/false,
                                          /*with_source=*/false);
        distinct.emplace(core::ProgramCache::key_for(site), site.coord);
      }
    for (const auto& [key, coord] : distinct) {
      const auto site = core::plan_site(coord, width, height, mem, nz,
                                        core::FluxMode::Fused, 0, false, false);
      const auto program = lowering.lower(site);
      std::cout << "--- " << lowering.name << " bytecode @ PE (" << coord.x
                << ", " << coord.y << ") on " << width << "x" << height
                << " ---\n"
                << wse::bc::disassemble(*program);
      const auto issues = wse::bc::lint_program(*program);
      for (const auto& issue : issues) std::cout << "lint: " << issue << '\n';
      ok &= issues.empty();
      std::cout << '\n';
    }
    std::cout << lowering.name << ": " << distinct.size()
              << " distinct program(s) on " << width << "x" << height << "\n\n";
  }
  std::cout << (ok ? "fabric_lint: all dumped programs lint clean\n"
                   : "fabric_lint: FAIL — lint diagnostics above\n");
  return ok ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  i64 width = 4;
  i64 height = 4;
  long nz = 8;
  std::string scenario_path;
  bool defects = false;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric" && i + 1 < argc) {
      if (!parse_fabric(argv[++i], width, height)) {
        std::cerr << "error: --fabric expects WxH with W, H >= 1\n";
        return 2;
      }
    } else if (arg == "--nz" && i + 1 < argc) {
      nz = std::strtol(argv[++i], nullptr, 10);
      if (nz < 1) {
        std::cerr << "error: --nz expects a depth >= 1\n";
        return 2;
      }
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_path = argv[++i];
    } else if (arg == "--demo-defects") {
      defects = true;
    } else if (arg == "--dump-program") {
      dump = true;
    } else {
      usage();
      return 2;
    }
  }
  try {
    if (defects) return demo_defects();
    if (dump) return dump_programs(width, height, static_cast<u32>(nz));
    if (!scenario_path.empty()) return lint_scenario(scenario_path);
    return lint_suite(width, height, static_cast<u32>(nz));
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
