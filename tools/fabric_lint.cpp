// fabric_lint — static verification of WSE device programs from the
// command line (docs/static_verification.md). Modes:
//
//   ./tools/fabric_lint                       # built-in suite: the four
//                                             # shipped CSL collectives
//   ./tools/fabric_lint --fabric 40x40        # same suite, other shape
//   ./tools/fabric_lint --scenario case.ini   # the device program a
//                                             # dataflow scenario would load
//   ./tools/fabric_lint --deep                # suite + every CG/Chebyshev
//                                             # device-program variant, with
//                                             # full bytecode abstract
//                                             # interpretation + balance
//   ./tools/fabric_lint --demo-defects        # seeded-defect programs, to
//                                             # see the diagnostics fire
//   ./tools/fabric_lint --dump-program        # disassemble every distinct
//                                             # CG/Chebyshev bytecode program
//                                             # the fabric would load
//   ./tools/fabric_lint --dump-cfg            # control-flow graph + per-
//                                             # handler cost bounds instead
//   ./tools/fabric_lint --lookahead           # bytecode- vs manifest-derived
//                                             # channel-lookahead tables
//
// `--format json` switches suite/scenario/deep/demo output to one JSON
// object with a findings array (program, check, severity, pe, color, pc,
// message) for CI consumption.
//
// Exit status: 0 when every verified program is clean (for --demo-defects:
// when every defect is correctly rejected; for --lookahead: when the
// bytecode-derived table is no looser than the manifest-derived one),
// 1 on verification errors, 2 on usage / setup errors.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstract_interp.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/verifier.hpp"
#include "app/scenario.hpp"
#include "common/error.hpp"
#include "core/bytecode_program.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "wse/bytecode.hpp"

using namespace fvdf;

namespace {

void usage() {
  std::cerr
      << "usage: fabric_lint [--fabric WxH] [--nz N] [--format json]\n"
         "       fabric_lint --scenario <case.ini> [--format json]\n"
         "       fabric_lint --deep [--fabric WxH] [--nz N] [--format json]\n"
         "       fabric_lint --demo-defects [--format json]\n"
         "       fabric_lint --dump-program [--fabric WxH] [--nz N]\n"
         "       fabric_lint --dump-cfg [--fabric WxH] [--nz N]\n"
         "       fabric_lint --lookahead [--fabric WxH] [--nz N] "
         "[--sim-threads T]\n";
}

bool parse_fabric(const std::string& arg, i64& width, i64& height) {
  const auto x = arg.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= arg.size()) return false;
  width = std::strtol(arg.c_str(), nullptr, 10);
  height = std::strtol(arg.c_str() + x + 1, nullptr, 10);
  return width >= 1 && height >= 1;
}

// ---------- JSON output (--format json) ----------

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char ch : s) {
    switch (ch) {
    case '"': os << "\\\""; break;
    case '\\': os << "\\\\"; break;
    case '\n': os << "\\n"; break;
    case '\t': os << "\\t"; break;
    default:
      if (static_cast<unsigned char>(ch) < 0x20) {
        os << "\\u00" << std::hex << static_cast<int>(ch) << std::dec;
      } else {
        os << ch;
      }
    }
  }
  return os.str();
}

/// One finding row of the JSON report: the diagnostic plus which lint
/// target (program under verification) produced it.
struct JsonSink {
  bool enabled = false;
  std::ostringstream rows;
  u64 count = 0;

  void add(const std::string& target, const analysis::Diagnostic& diag) {
    if (!enabled) return;
    rows << (count++ ? ",\n" : "\n");
    rows << "    {\"program\": \"" << json_escape(target) << "\", "
         << "\"check\": \"" << analysis::to_string(diag.check) << "\", "
         << "\"severity\": \""
         << (diag.severity == analysis::Severity::Error ? "error" : "warning")
         << "\", \"pe\": [" << diag.pe.x << ", " << diag.pe.y << "], "
         << "\"color\": " << static_cast<i32>(diag.color) << ", "
         << "\"pc\": " << diag.pc << ", "
         << "\"message\": \"" << json_escape(diag.message) << "\"}";
  }

  void finish(bool ok, u64 programs) const {
    std::cout << "{\n  \"ok\": " << (ok ? "true" : "false")
              << ",\n  \"programs_verified\": " << programs
              << ",\n  \"findings\": [" << rows.str()
              << (count ? "\n  " : "") << "]\n}\n";
  }
};

/// Verifies one named program; prints its report (human mode) or appends
/// findings (JSON mode); returns ok().
bool lint(const std::string& name, i64 width, i64 height,
          const wse::ProgramFactory& factory, JsonSink& json) {
  const auto report = analysis::verify_program(width, height, factory);
  if (json.enabled) {
    for (const auto& diag : report.diagnostics) json.add(name, diag);
  } else {
    std::cout << "--- " << name << " on " << width << "x" << height
              << " ---\n" << report.summary() << '\n';
  }
  return report.ok();
}

bool lint_collectives(i64 width, i64 height, u32 nz, JsonSink& json,
                      u64& programs) {
  namespace fx = analysis::fixtures;
  bool ok = true;
  ok &= lint("halo exchange", width, height, fx::halo_program(nz), json);
  ok &= lint("all-reduce", width, height, fx::allreduce_program(), json);
  ok &= lint("eastward exchange", width, height, fx::eastward_program(nz),
             json);
  const wse::PeCoord source{width / 2, height / 2};
  ok &= lint("any-source broadcast (root " + std::to_string(source.x) + "," +
                 std::to_string(source.y) + ")",
             width, height, fx::any_source_program(source, nz), json);
  programs += 4;
  return ok;
}

int lint_suite(i64 width, i64 height, u32 nz, JsonSink& json) {
  u64 programs = 0;
  const bool ok = lint_collectives(width, height, nz, json, programs);
  if (json.enabled) {
    json.finish(ok, programs);
  } else {
    std::cout << (ok ? "fabric_lint: all programs verified clean\n"
                     : "fabric_lint: FAIL — see diagnostics above\n");
  }
  return ok ? 0 : 1;
}

// ---------- --deep: every shipped device-program variant ----------

/// Verifies the four collectives plus every CG / Chebyshev device-program
/// variant the solver can load — both flux modes, Jacobi on and off — on a
/// heterogeneous problem (Dirichlet wells, lognormal permeability), so the
/// sweep covers every lowering shape: coordinate parities, fabric edges
/// and Dirichlet columns. "Clean" means zero errors; the known
/// send-overlap hardware-faithfulness warnings are reported but don't
/// gate (see docs/static_verification.md).
int lint_deep(i64 width, i64 height, u32 nz, JsonSink& json) {
  u64 programs = 0;
  bool ok = lint_collectives(width, height, nz, json, programs);

  const auto problem = FlowProblem::quarter_five_spot(
      width, height, nz, /*seed=*/3, /*dirichlet_fraction=*/0.8);
  struct CgVariant {
    const char* name;
    core::FluxMode mode;
    bool jacobi;
  };
  const CgVariant cg_variants[] = {
      {"cg fused", core::FluxMode::Fused, false},
      {"cg on-the-fly", core::FluxMode::OnTheFly, false},
      {"cg fused + jacobi", core::FluxMode::Fused, true},
      {"cg on-the-fly + jacobi", core::FluxMode::OnTheFly, true},
  };
  for (const auto& variant : cg_variants) {
    core::DataflowConfig config;
    config.flux_mode = variant.mode;
    config.jacobi_precondition = variant.jacobi;
    config.tolerance = 1e-6f;
    const auto report = core::verify_dataflow(problem, config);
    ++programs;
    if (json.enabled) {
      for (const auto& diag : report.diagnostics) json.add(variant.name, diag);
    } else {
      std::cout << "--- " << variant.name << " on " << width << "x" << height
                << " (nz " << nz << ") ---\n" << report.summary() << '\n';
    }
    ok &= report.ok();
  }

  const struct {
    const char* name;
    core::FluxMode mode;
  } cheb_variants[] = {
      {"chebyshev fused", core::FluxMode::Fused},
      {"chebyshev on-the-fly", core::FluxMode::OnTheFly},
  };
  for (const auto& variant : cheb_variants) {
    core::ChebyshevDeviceConfig config;
    config.flux_mode = variant.mode;
    config.tolerance = 1e-6f;
    config.bounds = {0.05, 12.0};
    const auto report = core::verify_dataflow_chebyshev(problem, config);
    ++programs;
    if (json.enabled) {
      for (const auto& diag : report.diagnostics) json.add(variant.name, diag);
    } else {
      std::cout << "--- " << variant.name << " on " << width << "x" << height
                << " (nz " << nz << ") ---\n" << report.summary() << '\n';
    }
    ok &= report.ok();
  }

  if (json.enabled) {
    json.finish(ok, programs);
  } else {
    std::cout << (ok ? "fabric_lint: all programs verified clean (deep)\n"
                     : "fabric_lint: FAIL — see diagnostics above\n");
  }
  return ok ? 0 : 1;
}

int lint_scenario(const std::string& path, JsonSink& json) {
  const auto config = Config::parse_file(path);
  const auto scenario = app::scenario_from_config(config);
  if (scenario.backend != app::Backend::Dataflow) {
    std::cerr << "error: scenario backend is " << to_string(scenario.backend)
              << "; only dataflow scenarios have a device program to verify\n";
    return 2;
  }
  core::DataflowConfig device;
  device.tolerance = static_cast<f32>(scenario.tolerance);
  device.max_iterations = scenario.max_iterations;
  device.jacobi_precondition = scenario.transient;
  const auto report = core::verify_dataflow(*scenario.problem, device);
  if (json.enabled) {
    for (const auto& diag : report.diagnostics)
      json.add("CG device program (" + path + ")", diag);
    json.finish(report.ok(), 1);
  } else {
    std::cout << "--- CG device program for " << path << " ---\n"
              << report.summary() << '\n';
  }
  return report.ok() ? 0 : 1;
}

/// Each seeded defect must be rejected — and by at least one diagnostic of
/// its advertised check and severity — for the demo to "pass".
int demo_defects(JsonSink& json) {
  namespace fx = analysis::fixtures;
  struct Demo {
    const char* name;
    analysis::Check check;
    analysis::Severity severity;
    i64 width, height;
    wse::ProgramFactory factory;
  };
  const Demo demos[] = {
      {"edge route", analysis::Check::RouteCompleteness,
       analysis::Severity::Error, 3, 1, fx::edge_route_defect()},
      {"credit cycle", analysis::Check::DeadlockFreedom,
       analysis::Severity::Error, 2, 1, fx::credit_cycle_defect()},
      {"missing handler", analysis::Check::DeliveryLiveness,
       analysis::Severity::Error, 2, 1, fx::missing_handler_defect()},
      {"arena overflow", analysis::Check::MemoryBudget,
       analysis::Severity::Error, 1, 1, fx::arena_overflow_defect()},
      {"bytecode out-of-bounds span", analysis::Check::BytecodeMemory,
       analysis::Severity::Error, 1, 1, fx::bc_oob_span_defect()},
      {"bytecode unset continuation", analysis::Check::BytecodeLiveness,
       analysis::Severity::Error, 1, 1, fx::bc_unset_continuation_defect()},
      {"bytecode unbounded loop", analysis::Check::BytecodeCost,
       analysis::Severity::Error, 1, 1, fx::bc_unbounded_loop_defect()},
      {"bytecode send overlap", analysis::Check::BytecodeMemory,
       analysis::Severity::Warning, 1, 1, fx::bc_send_overlap_defect()},
      {"bytecode unbalanced send", analysis::Check::SendRecvBalance,
       analysis::Severity::Error, 2, 1, fx::bc_unbalanced_send_defect()},
  };
  bool ok = true;
  u64 programs = 0;
  for (const auto& demo : demos) {
    const auto report =
        analysis::verify_program(demo.width, demo.height, demo.factory);
    ++programs;
    if (json.enabled) {
      for (const auto& diag : report.diagnostics)
        json.add(std::string("seeded defect: ") + demo.name, diag);
    } else {
      std::cout << "--- seeded defect: " << demo.name << " ---\n"
                << report.summary() << '\n';
    }
    bool tripped = false;
    for (const auto& diag : report.diagnostics)
      tripped |= diag.check == demo.check && diag.severity == demo.severity;
    if (!tripped) {
      std::cout << "UNEXPECTED: defect was not rejected by "
                << analysis::to_string(demo.check) << '\n';
      ok = false;
    }
  }
  if (json.enabled) {
    json.finish(ok, programs);
  } else {
    std::cout << (ok ? "fabric_lint: all seeded defects correctly rejected\n"
                     : "fabric_lint: FAIL — a defect slipped through\n");
  }
  return ok ? 0 : 1;
}

/// Disassembles (or, with `cfg`, dumps the control-flow graph and
/// per-handler cost bounds of) every distinct bytecode program a WxH
/// solve would load. PEs whose lowering inputs coincide share one Program
/// (the same ProgramCache::key_for dedup the solver uses), so the dump
/// lists each shape once with a representative coordinate. Static lint
/// diagnostics for the encoding itself gate the exit status.
int dump_programs(i64 width, i64 height, u32 nz, bool cfg) {
  const wse::PeMemoryParams mem;
  bool ok = true;

  struct Lowering {
    const char* name;
    std::function<std::shared_ptr<const wse::bc::Program>(
        const core::LoweringSite&)> lower;
  };
  core::CgPeConfig cg;
  cg.nz = nz;
  cg.tolerance = 1e-6f;
  core::ChebyshevPeConfig cheb;
  cheb.nz = nz;
  cheb.tolerance = 1e-6f;
  cheb.lambda_min = 0.05f;
  cheb.lambda_max = 12.0f;
  const Lowering lowerings[] = {
      {"cg", [&](const core::LoweringSite& s) { return core::lower_cg(cg, s); }},
      {"chebyshev", [&](const core::LoweringSite& s) {
         return core::lower_chebyshev(cheb, s);
       }}};

  for (const auto& lowering : lowerings) {
    std::map<core::ProgramCache::Key, wse::PeCoord> distinct;
    for (i64 y = 0; y < height; ++y)
      for (i64 x = 0; x < width; ++x) {
        const auto site = core::plan_site({x, y}, width, height, mem, nz,
                                          core::FluxMode::Fused,
                                          /*dirichlet_count=*/0,
                                          /*jacobi=*/false,
                                          /*with_source=*/false);
        distinct.emplace(core::ProgramCache::key_for(site), site.coord);
      }
    for (const auto& [key, coord] : distinct) {
      const auto site = core::plan_site(coord, width, height, mem, nz,
                                        core::FluxMode::Fused, 0, false, false);
      const auto program = lowering.lower(site);
      std::cout << "--- " << lowering.name << " bytecode @ PE (" << coord.x
                << ", " << coord.y << ") on " << width << "x" << height
                << " ---\n";
      if (cfg) {
        const auto analysis = analysis::analyze_program(*program);
        std::cout << analysis::dump_cfg(analysis.cfg, *program)
                  << analysis.summary(program->name);
      } else {
        std::cout << wse::bc::disassemble(*program);
      }
      const auto issues = wse::bc::lint_program(*program);
      for (const auto& issue : issues) std::cout << "lint: " << issue << '\n';
      ok &= issues.empty();
      std::cout << '\n';
    }
    std::cout << lowering.name << ": " << distinct.size()
              << " distinct program(s) on " << width << "x" << height << "\n\n";
  }
  std::cout << (ok ? "fabric_lint: all dumped programs lint clean\n"
                   : "fabric_lint: FAIL — lint diagnostics above\n");
  return ok ? 0 : 1;
}

// ---------- --lookahead: bytecode vs manifest batch floors ----------

void print_lookahead_table(const char* label, const wse::ChannelLookahead& t,
                           u32 tile_rows, u32 tile_cols) {
  static constexpr const char* kSideNames[4] = {"north", "east", "south",
                                                "west"};
  std::cout << label << ":\n";
  for (std::size_t s = 0; s < t.out.size(); ++s) {
    std::cout << "  shard " << s << " (tile " << s / tile_cols << ","
              << s % tile_cols << "):";
    bool any = false;
    for (std::size_t d = 0; d < 4; ++d) {
      // Sides with no neighboring tile are omitted entirely.
      const u32 r = static_cast<u32>(s) / tile_cols;
      const u32 c = static_cast<u32>(s) % tile_cols;
      const bool exists = (d == 0 && r > 0) || (d == 1 && c + 1 < tile_cols) ||
                          (d == 2 && r + 1 < tile_rows) || (d == 3 && c > 0);
      if (!exists) continue;
      any = true;
      std::cout << ' ' << kSideNames[d] << ' '
                << (t.out[s][d].crosses
                        ? "crosses(min batch " +
                              std::to_string(t.out[s][d].min_batch_cycles) +
                              " cyc)"
                        : "decoupled")
                << ';';
    }
    if (!any) std::cout << " no internal boundaries";
    std::cout << '\n';
  }
}

/// True when edge `a` is at least as tight as `b` (not-crossing beats any
/// crossing edge; otherwise larger min batch is tighter).
bool edge_no_looser(const wse::ChannelLookahead::Edge& a,
                    const wse::ChannelLookahead::Edge& b) {
  if (!a.crosses) return true;
  if (!b.crosses) return false;
  return a.min_batch_cycles >= b.min_batch_cycles;
}

int lookahead_report(i64 width, i64 height, u32 nz, u32 sim_threads) {
  const auto problem = FlowProblem::quarter_five_spot(
      width, height, nz, /*seed=*/3, /*dirichlet_fraction=*/0.8);
  core::DataflowConfig config;
  config.tolerance = 1e-6f;
  config.sim_threads = sim_threads;
  const auto plan = core::plan_dataflow_lookahead(problem, config);
  std::cout << "--- channel lookahead for CG on " << width << "x" << height
            << " (nz " << nz << ", " << plan.shard_count << " shard(s), "
            << plan.tile_rows << "x" << plan.tile_cols << " tiles) ---\n";
  if (plan.shard_count <= 1) {
    std::cout << "single shard: no internal boundaries to plan\n";
    return 0;
  }
  print_lookahead_table("bytecode-derived (reachable SEND facts)",
                        plan.bytecode, plan.tile_rows, plan.tile_cols);
  print_lookahead_table("manifest-derived (declared bounds)", plan.manifest,
                        plan.tile_rows, plan.tile_cols);
  bool tight = true;
  for (std::size_t s = 0; s < plan.bytecode.out.size(); ++s)
    for (std::size_t d = 0; d < 4; ++d)
      tight &= edge_no_looser(plan.bytecode.out[s][d], plan.manifest.out[s][d]);
  std::cout << (tight ? "bytecode-derived windows are no looser than "
                        "manifest-derived windows\n"
                      : "UNEXPECTED: bytecode-derived table is looser than "
                        "the manifest-derived one\n");
  return tight ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  i64 width = 4;
  i64 height = 4;
  long nz = 8;
  long sim_threads = 4;
  std::string scenario_path;
  std::string format;
  bool defects = false;
  bool dump = false;
  bool dump_cfg = false;
  bool deep = false;
  bool lookahead = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric" && i + 1 < argc) {
      if (!parse_fabric(argv[++i], width, height)) {
        std::cerr << "error: --fabric expects WxH with W, H >= 1\n";
        return 2;
      }
    } else if (arg == "--nz" && i + 1 < argc) {
      nz = std::strtol(argv[++i], nullptr, 10);
      if (nz < 1) {
        std::cerr << "error: --nz expects a depth >= 1\n";
        return 2;
      }
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_path = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "json" && format != "text") {
        std::cerr << "error: --format expects json or text\n";
        return 2;
      }
    } else if (arg == "--sim-threads" && i + 1 < argc) {
      sim_threads = std::strtol(argv[++i], nullptr, 10);
      if (sim_threads < 1) {
        std::cerr << "error: --sim-threads expects a count >= 1\n";
        return 2;
      }
    } else if (arg == "--demo-defects") {
      defects = true;
    } else if (arg == "--dump-program") {
      dump = true;
    } else if (arg == "--dump-cfg") {
      dump_cfg = true;
    } else if (arg == "--deep") {
      deep = true;
    } else if (arg == "--lookahead") {
      lookahead = true;
    } else {
      usage();
      return 2;
    }
  }
  JsonSink json;
  json.enabled = format == "json";
  try {
    if (defects) return demo_defects(json);
    if (dump || dump_cfg) {
      return dump_programs(width, height, static_cast<u32>(nz), dump_cfg);
    }
    if (lookahead) {
      return lookahead_report(width, height, static_cast<u32>(nz),
                              static_cast<u32>(sim_threads));
    }
    if (!scenario_path.empty()) return lint_scenario(scenario_path, json);
    if (deep) return lint_deep(width, height, static_cast<u32>(nz), json);
    return lint_suite(width, height, static_cast<u32>(nz), json);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
