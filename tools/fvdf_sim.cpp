// fvdf_sim — the production-style simulation driver: one INI config in,
// solved pressure (steady or transient, host or simulated dataflow
// device) plus VTK/checkpoint artifacts out.
//
//   ./tools/fvdf_sim path/to/case.ini
//   ./tools/fvdf_sim --print-template > case.ini
//
// See src/app/scenario.hpp for the full schema.

#include <iostream>
#include <string>

#include "app/scenario.hpp"
#include "common/error.hpp"

namespace {

constexpr const char* kTemplate = R"(# fvdf_sim case file
[mesh]
nx = 32
ny = 32
nz = 8

[perm]
kind = lognormal     ; homogeneous | layered | lognormal | channelized
sigma = 1.0
seed = 7

[wells]
injector_pressure = 1.0
producer_pressure = 0.0

[solver]
backend = host-pcg   ; host | host-pcg | dataflow
tolerance = 1e-18

[transient]
enabled = false
dt = 0.5
steps = 10

[output]
vtk = case.vtk
heatmap = true
)";

} // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--print-template") {
    std::cout << kTemplate;
    return 0;
  }
  if (argc != 2) {
    std::cerr << "usage: fvdf_sim <case.ini>  (or --print-template)\n";
    return 2;
  }
  try {
    const auto config = fvdf::Config::parse_file(argv[1]);
    const auto scenario = fvdf::app::scenario_from_config(config);
    const auto outcome = fvdf::app::run_scenario(scenario, std::cout);
    return outcome.converged ? 0 : 1;
  } catch (const fvdf::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
