// fvdf_sim — the production-style simulation driver: one INI config in,
// solved pressure (steady or transient, host or simulated dataflow
// device) plus VTK/checkpoint artifacts out.
//
//   ./tools/fvdf_sim path/to/case.ini
//   ./tools/fvdf_sim --sim-threads 4 path/to/case.ini
//   ./tools/fvdf_sim --profile-host prof_out path/to/case.ini
//   ./tools/fvdf_sim --print-template > case.ini
//
// See src/app/scenario.hpp for the full schema. `--sim-threads N` overrides
// the config's solver.sim_threads (0 = hardware concurrency); it changes
// wall-clock only, never results. `--profile-host DIR` overrides
// output.host_profile: with the dataflow backend it attaches the host-side
// execution profiler and writes host_profile.json + host_trace.json into
// DIR (docs/observability.md, "Host profiling").
//
// SIGINT/SIGTERM during a transient run stop it gracefully: the current
// backward-Euler step finishes, artifacts (including output.checkpoint
// with the step counter) are written, and the exit code is 3 — so a later
// run with transient.resume continues from exactly that state. Steady
// solves are single device/host runs and remain uninterruptible.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "app/scenario.hpp"
#include "common/error.hpp"

namespace {

std::atomic<bool> g_stop_requested{false};

void on_signal(int) { g_stop_requested.store(true); }

constexpr const char* kTemplate = R"(# fvdf_sim case file
[mesh]
nx = 32
ny = 32
nz = 8

[perm]
kind = lognormal     ; homogeneous | layered | lognormal | channelized
sigma = 1.0
seed = 7

[wells]
injector_pressure = 1.0
producer_pressure = 0.0

[solver]
backend = host-pcg   ; host | host-pcg | dataflow
tolerance = 1e-18
sim_threads = 1      ; fabric simulator workers (0 = hardware concurrency)

[transient]
enabled = false
dt = 0.5
steps = 10

[output]
vtk = case.vtk
heatmap = true
)";

void usage() {
  std::cerr << "usage: fvdf_sim [--sim-threads N] [--profile-host DIR] "
               "<case.ini>  (or --print-template)\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string case_path;
  long sim_threads = -1; // -1 = use the config's value
  std::string host_profile_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-template") {
      std::cout << kTemplate;
      return 0;
    }
    if (arg == "--sim-threads") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      sim_threads = std::strtol(argv[++i], nullptr, 10);
      if (sim_threads < 0) {
        std::cerr << "error: --sim-threads expects a count >= 0\n";
        return 2;
      }
      continue;
    }
    if (arg == "--profile-host") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      host_profile_dir = argv[++i];
      continue;
    }
    if (!case_path.empty()) {
      usage();
      return 2;
    }
    case_path = arg;
  }
  if (case_path.empty()) {
    usage();
    return 2;
  }
  try {
    const auto config = fvdf::Config::parse_file(case_path);
    auto scenario = fvdf::app::scenario_from_config(config);
    if (sim_threads >= 0)
      scenario.sim_threads = static_cast<fvdf::u32>(sim_threads);
    if (!host_profile_dir.empty()) {
      if (scenario.backend != fvdf::app::Backend::Dataflow) {
        std::cerr << "error: --profile-host requires solver.backend = dataflow\n";
        return 2;
      }
      scenario.host_profile_dir = host_profile_dir;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    fvdf::app::RunHooks hooks;
    hooks.on_step = [](fvdf::i64, fvdf::i64, fvdf::u64,
                       const std::vector<fvdf::f64>&) {
      return !g_stop_requested.load();
    };
    const auto outcome = fvdf::app::run_scenario(scenario, std::cout, &hooks);
    if (outcome.interrupted) {
      std::cout << "interrupted after step " << outcome.steps_completed << "/"
                << scenario.steps;
      if (!scenario.checkpoint_path.empty())
        std::cout << "; resume with transient.resume = "
                  << scenario.checkpoint_path;
      std::cout << '\n';
      return 3;
    }
    return outcome.converged ? 0 : 1;
  } catch (const fvdf::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
