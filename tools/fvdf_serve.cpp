// fvdf_serve — the persistent solve daemon (docs/serving.md): accepts
// case configs over a unix-domain NDJSON socket (plus an optional
// loopback HTTP endpoint), batches many independent solves on a bounded
// worker pool, and memoizes compiled artifacts in a content-addressed
// cache so repeat submissions of the same case skip setup entirely.
//
//   ./tools/fvdf_serve --socket /tmp/fvdf.sock
//   ./tools/fvdf_serve --socket /tmp/fvdf.sock --http-port 8080
//       --workers 4 --spool-dir /var/tmp/fvdf_spool
//
// SIGINT/SIGTERM trigger a graceful stop: running transient jobs finish
// their current step and checkpoint into the spool directory, queued jobs
// stay spooled, and a restarted daemon resumes them (--spool-dir).

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <csignal>
#include <poll.h>
#include <unistd.h>

#include "common/error.hpp"
#include "serve/server.hpp"

namespace {

// Self-pipe: the handler only write()s (async-signal-safe); the main
// thread blocks on the read end and runs the graceful stop.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void usage() {
  std::cerr
      << "usage: fvdf_serve --socket PATH [--http-port N] [--workers N]\n"
         "                  [--queue-capacity N] [--cache-capacity N]\n"
         "                  [--spool-dir DIR] [--checkpoint-every N]\n";
}

} // namespace

int main(int argc, char** argv) {
  fvdf::serve::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = next();
    } else if (arg == "--http-port") {
      config.http_port = static_cast<fvdf::i32>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--workers") {
      config.jobs.workers =
          static_cast<fvdf::u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue-capacity") {
      config.jobs.queue_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--cache-capacity") {
      config.cache_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--spool-dir") {
      config.jobs.spool_dir = next();
    } else if (arg == "--checkpoint-every") {
      config.jobs.checkpoint_every = std::strtol(next(), nullptr, 10);
    } else {
      usage();
      return 2;
    }
  }
  if (config.socket_path.empty()) {
    usage();
    return 2;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "error: pipe() failed: " << std::strerror(errno) << '\n';
    return 2;
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    fvdf::serve::Server server(std::move(config));
    server.start();
    const fvdf::serve::JobStats boot = server.jobs().stats();
    if (boot.recovered > 0)
      std::cout << "fvdf_serve recovered " << boot.recovered
                << " spooled job(s)" << std::endl;
    std::cout << "fvdf_serve ready";
    if (server.http_port() >= 0)
      std::cout << " (http 127.0.0.1:" << server.http_port() << ")";
    std::cout << std::endl;

    // Park until a signal or an {"op":"shutdown"} request (the latter
    // flips shutting_down() from a connection thread, so poll both).
    char byte;
    struct pollfd pfd {};
    pfd.fd = g_signal_pipe[0];
    pfd.events = POLLIN;
    while (!server.shutting_down()) {
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR) break;
      if (ready > 0 && ::read(g_signal_pipe[0], &byte, 1) > 0) break;
    }
    std::cout << "fvdf_serve stopping: draining jobs, checkpointing transient "
                 "runs"
              << std::endl;
    server.request_shutdown();
    server.wait();
    std::cout << "fvdf_serve stopped" << std::endl;
    return 0;
  } catch (const fvdf::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
