// Transient injection: the time dimension of the paper's problem class —
// slightly-compressible single-phase flow with implicit backward-Euler
// steps (Sec. II-A's temporal discretization), watching the pressure
// front diffuse from the injector toward the producer.
//
// Each time step is one linear solve; the --device flag runs every step's
// solve on the simulated dataflow fabric instead of the host.
//
//   ./examples/transient_injection [--n 24 --nz 2 --dt 0.5 --steps 12
//                                   --device]

#include <iostream>

#include "common/cli.hpp"
#include "common/image.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "solver/transient.hpp"

using namespace fvdf;

namespace {

ScalarImage top_layer(const CartesianMesh3D& mesh, const std::vector<f64>& field) {
  ScalarImage image;
  image.nx = mesh.nx();
  image.ny = mesh.ny();
  image.values.resize(static_cast<std::size_t>(image.nx * image.ny));
  for (i64 y = 0; y < image.ny; ++y)
    for (i64 x = 0; x < image.nx; ++x)
      image.values[static_cast<std::size_t>(y * image.nx + x)] =
          field[static_cast<std::size_t>(mesh.index(x, y, 0))];
  return image;
}

} // namespace

int main(int argc, char** argv) {
  i64 n = 24, nz = 2, steps = 12, seed = 9;
  f64 dt = 0.5, porosity = 0.2, compressibility = 1e-2;
  bool device = false;
  CliParser cli("transient_injection",
                "backward-Euler pressure diffusion from injector to producer");
  cli.add_i64("n", &n, "lateral cells (n x n footprint)");
  cli.add_i64("nz", &nz, "depth layers");
  cli.add_i64("steps", &steps, "backward-Euler steps");
  cli.add_i64("seed", &seed, "permeability seed");
  cli.add_f64("dt", &dt, "time-step size");
  cli.add_f64("porosity", &porosity, "phi");
  cli.add_f64("compressibility", &compressibility, "c_t");
  cli.add_flag("device", &device, "run every linear solve on the simulated fabric");
  if (!cli.parse(argc, argv)) return 0;

  const auto problem =
      FlowProblem::quarter_five_spot(n, n, nz, static_cast<u64>(seed), 0.8);
  std::cout << "problem: " << problem.mesh().describe() << ", dt=" << dt
            << ", sigma=" << porosity * compressibility / dt << " per cell\n\n";

  if (device) {
    core::DataflowConfig config;
    config.tolerance = 1e-14f;
    config.jacobi_precondition = true;
    const auto result = core::solve_transient_dataflow(problem, dt, steps, porosity,
                                                       compressibility, config);
    Table table("Device transient run (" + std::to_string(steps) + " steps)");
    table.set_header({"step", "device CG iterations"});
    for (std::size_t s = 0; s < result.iterations_per_step.size(); ++s)
      table.add_row({std::to_string(s + 1),
                     std::to_string(result.iterations_per_step[s])});
    std::cout << table << '\n'
              << "total simulated device time: "
              << fmt_seconds(result.total_device_seconds) << '\n';
    std::vector<f64> field(result.pressure.begin(), result.pressure.end());
    std::cout << "\nfinal pressure (top layer):\n"
              << ascii_heatmap(top_layer(problem.mesh(), field), 48, 18);
    return result.all_converged ? 0 : 1;
  }

  TransientOptions options;
  options.dt = dt;
  options.steps = steps;
  options.porosity = porosity;
  options.total_compressibility = compressibility;
  options.cg.tolerance = 1e-22;
  options.record_history = true;
  const auto result = solve_transient_host(problem, options);

  // Probe the domain center: the diffusive front's arrival.
  const auto probe =
      static_cast<std::size_t>(problem.mesh().index(n / 2, n / 2, 0));
  Table table("Pressure-front arrival at the domain center");
  table.set_header({"step", "time", "p(center)", "linear iters"});
  for (std::size_t s = 1; s < result.history.size(); ++s)
    table.add_row({std::to_string(s), fmt_fixed(static_cast<f64>(s) * dt, 2),
                   fmt_fixed(result.history[s][probe], 5),
                   std::to_string(result.iterations_per_step[s - 1])});
  std::cout << table << '\n';

  std::cout << "early field (step 2):\n"
            << ascii_heatmap(top_layer(problem.mesh(), result.history[2]), 48, 16)
            << "\nfinal field (step " << steps << "):\n"
            << ascii_heatmap(top_layer(problem.mesh(), result.history.back()), 48, 16);
  return result.all_converged ? 0 : 1;
}
