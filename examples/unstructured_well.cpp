// Unstructured near-well study (paper future work, Sec. VI): a radial grid
// around an injection well — genuinely non-Cartesian topology (periodic in
// theta, radius-dependent volumes) — solved with the same matrix-free
// CG/PCG machinery, compared against the analytic log(r) steady profile,
// and mapped onto a PE fabric with the placement planner.
//
//   ./examples/unstructured_well [--nr 32 --ntheta 32 --nz 2
//                                 --r0 0.5 --r1 20 --fabric 8]

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "umesh/fabric_map.hpp"
#include "umesh/mesh.hpp"
#include "umesh/usolve.hpp"

using namespace fvdf;
using namespace fvdf::umesh;

int main(int argc, char** argv) {
  i64 nr = 32, ntheta = 32, nz = 2, fabric = 8;
  f64 r0 = 0.5, r1 = 20.0;
  CliParser cli("unstructured_well",
                "radial near-well flow on an unstructured FV mesh");
  cli.add_i64("nr", &nr, "radial shells");
  cli.add_i64("ntheta", &ntheta, "angular sectors");
  cli.add_i64("nz", &nz, "vertical layers");
  cli.add_i64("fabric", &fabric, "fabric edge for the mapping study");
  cli.add_f64("r0", &r0, "well radius");
  cli.add_f64("r1", &r1, "outer boundary radius");
  if (!cli.parse(argc, argv)) return 0;

  const auto ring = UnstructuredMesh::radial_sector(nr, ntheta, nz, r0, r1, 1.0, 1.0);
  std::cout << "mesh: " << ring.cell_count() << " cells, " << ring.faces().size()
            << " faces, max degree " << ring.max_degree()
            << (ring.connected() ? ", connected" : ", DISCONNECTED") << "\n\n";

  // Well at the inner shell (p=1), far-field boundary at the outer (p=0).
  DirichletSet bc;
  for (i64 iz = 0; iz < nz; ++iz)
    for (i64 it = 0; it < ntheta; ++it) {
      bc.pin((iz * ntheta + it) * nr + 0, 1.0);
      bc.pin((iz * ntheta + it) * nr + nr - 1, 0.0);
    }
  std::vector<f64> mobility(static_cast<std::size_t>(ring.cell_count()), 1.0);
  const UFlowProblem problem(ring, std::move(mobility), std::move(bc));

  CgOptions options;
  options.tolerance = 1e-24;
  const auto result = solve_pressure_unstructured(problem, options);
  std::cout << "solve: " << result.cg.iterations << " PCG iterations, residual "
            << result.final_residual_norm << "\n\n";

  // Radial profile vs the analytic log solution.
  const f64 dr = (r1 - r0) / static_cast<f64>(nr);
  const f64 r_in = r0 + 0.5 * dr, r_out = r1 - 0.5 * dr;
  Table profile("Radial pressure profile vs analytic 1 - log(r/r_in)/log(r_out/r_in)");
  profile.set_header({"shell", "r", "p (numeric)", "p (analytic)", "error"});
  for (i64 ir = 0; ir < nr; ir += std::max<i64>(1, nr / 8)) {
    const f64 r_mid = r0 + (static_cast<f64>(ir) + 0.5) * dr;
    const f64 analytic =
        ir == 0 ? 1.0
                : std::clamp(1.0 - std::log(r_mid / r_in) / std::log(r_out / r_in),
                             0.0, 1.0);
    const f64 numeric = result.pressure[static_cast<std::size_t>(ir)];
    profile.add_row({std::to_string(ir), fmt_fixed(r_mid, 2), fmt_fixed(numeric, 4),
                     fmt_fixed(analytic, 4), fmt_fixed(std::fabs(numeric - analytic), 4)});
  }
  std::cout << profile << '\n';

  // Fabric-mapping study for this topology.
  MappingOptions mapping_options;
  mapping_options.fabric_width = fabric;
  mapping_options.fabric_height = fabric;
  Table mapping_table("Mapping onto a " + std::to_string(fabric) + "x" +
                      std::to_string(fabric) + " fabric");
  mapping_table.set_header({"strategy", "cut faces", "hop weight", "max remote PEs"});
  for (MappingStrategy strategy :
       {MappingStrategy::IndexBlocks, MappingStrategy::MortonSfc,
        MappingStrategy::Random}) {
    const auto report = evaluate_mapping(
        ring, map_cells(ring, strategy, mapping_options), mapping_options);
    mapping_table.add_row({to_string(strategy), fmt_count(report.cut_faces),
                           fmt_count(report.total_hop_weight),
                           std::to_string(report.max_remote_neighbors)});
  }
  std::cout << mapping_table;
  return result.cg.converged ? 0 : 1;
}
