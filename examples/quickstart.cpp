// Quickstart: build a single-phase flow problem, solve it three ways —
// double-precision host oracle, the CUDA-model GPU reference, and the
// simulated wafer-scale dataflow device — and compare.
//
//   ./examples/quickstart [--nx 12 --ny 10 --nz 8 --seed 7]

#include <iostream>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "gpu/gpu_solver.hpp"
#include "solver/pressure_solve.hpp"

using namespace fvdf;

int main(int argc, char** argv) {
  i64 nx = 12, ny = 10, nz = 8, seed = 7;
  CliParser cli("quickstart", "solve one flow problem on host, GPU model and "
                              "simulated dataflow fabric");
  cli.add_i64("nx", &nx, "cells in x (fabric width)");
  cli.add_i64("ny", &ny, "cells in y (fabric height)");
  cli.add_i64("nz", &nz, "cells in z (column depth per PE)");
  cli.add_i64("seed", &seed, "permeability field seed");
  if (!cli.parse(argc, argv)) return 0;

  // 1. The problem: log-normal permeability, injector at (0,0), producer at
  //    (nx-1, ny-1), constant viscosity (Sec. II-A's model).
  const auto problem =
      FlowProblem::quarter_five_spot(nx, ny, nz, static_cast<u64>(seed));
  std::cout << "problem: " << problem.mesh().describe() << "\n\n";

  // 2. Host oracle (f64 CG on the matrix-free operator).
  CgOptions host_options;
  host_options.tolerance = 1e-22;
  const auto host = solve_pressure_host(problem, host_options);
  std::cout << "host   : " << host.cg.iterations << " CG iterations, Eq.(3) "
            << "residual " << host.final_residual_norm << "\n";

  // 3. GPU reference (Sec. IV): one thread per cell, 16x8x8 blocks.
  gpu::GpuFvSolver gpu_solver(problem, GpuSpec::a100());
  gpu::GpuSolveConfig gpu_config;
  gpu_config.tolerance = 1e-12;
  const auto gpu = gpu_solver.solve(gpu_config);
  std::cout << "gpu    : " << gpu.iterations << " CG iterations, "
            << gpu.kernel_launches << " kernel launches, modeled device time "
            << fmt_seconds(gpu.modeled_seconds) << "\n";

  // 4. Dataflow device (Sec. III): one PE per column, Table-I halo
  //    exchange, whole-fabric all-reduce, 14-state CG machine.
  core::DataflowConfig df_config;
  df_config.tolerance = 1e-12f;
  const auto dataflow = core::solve_dataflow(problem, df_config);
  std::cout << "device : " << dataflow.iterations << " CG iterations, "
            << fmt_count(dataflow.fabric.messages_sent) << " messages, "
            << fmt_count(dataflow.counters.total_flops()) << " FLOPs, "
            << "simulated device time " << fmt_seconds(dataflow.device_seconds)
            << "\n\n";

  // 5. Numerical integrity (Sec. V-B).
  const auto report = core::compare_with_host(problem, dataflow, 1e-22);
  std::cout << "validation: " << report.summary() << "\n";
  return report.rel_l2_error < 1e-4 ? 0 : 1;
}
