// Scaling study: sweep fabric sizes and column depths on the simulated
// dataflow device, report device time / throughput / communication share,
// and extrapolate to CS-2 scale with the analytic model — a user-facing
// version of the Table III / Table IV experiments with CSV output for
// plotting.
//
//   ./examples/scaling_study [--max-dim 20 --nz 32 --iters 15 --csv out.csv]

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"

using namespace fvdf;

int main(int argc, char** argv) {
  i64 max_dim = 20, nz = 32, iters = 15;
  std::string csv_path;
  CliParser cli("scaling_study",
                "weak-scaling sweep on the simulated fabric + CS-2 extrapolation");
  cli.add_i64("max-dim", &max_dim, "largest fabric edge to sweep");
  cli.add_i64("nz", &nz, "column depth per PE");
  cli.add_i64("iters", &iters, "fixed CG iterations per run");
  cli.add_string("csv", &csv_path, "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  Table table("Weak scaling on the simulated fabric (Nz=" + std::to_string(nz) +
              ", " + std::to_string(iters) + " iterations)");
  table.set_header({"fabric", "cells", "Alg1 device", "thr [cell/s]",
                    "comm share", "msgs", "flops"});

  for (i64 dim = 4; dim <= max_dim; dim += 4) {
    const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
    core::DataflowConfig config;
    config.tolerance = 0.0f;
    config.max_iterations = static_cast<u64>(iters);
    const auto full = core::solve_dataflow(problem, config);

    core::DataflowConfig comm_config = config;
    comm_config.timing.compute_scale = 0.0;
    const auto comm = core::solve_dataflow(problem, comm_config);

    const u64 cells = static_cast<u64>(dim) * dim * nz;
    const f64 throughput =
        static_cast<f64>(cells) * static_cast<f64>(iters) / full.device_seconds;
    table.add_row({std::to_string(dim) + "x" + std::to_string(dim), fmt_count(cells),
                   fmt_seconds(full.device_seconds),
                   fmt_fixed(throughput / 1e6, 1) + " Mcell/s",
                   fmt_percent(comm.device_cycles / full.device_cycles),
                   fmt_count(full.fabric.messages_sent),
                   fmt_count(full.counters.total_flops())});
  }
  std::cout << table << '\n';

  // CS-2-scale extrapolation.
  const Cs2AnalyticModel model;
  Table extrapolation("Extrapolation to CS-2 scale (analytic model, Nz=922)");
  extrapolation.set_header({"fabric", "Alg1 [s/225 iters]", "throughput"});
  for (const auto& [w, h] : {std::pair<i64, i64>{200, 200}, {400, 400},
                            {750, 994}}) {
    const f64 t = model.alg1_time(w, h, 922, 225);
    const u64 cells = static_cast<u64>(w) * h * 922;
    extrapolation.add_row({std::to_string(w) + "x" + std::to_string(h),
                           fmt_fixed(t, 4),
                           fmt_gcells(Cs2AnalyticModel::throughput(cells, 225, t))});
  }
  std::cout << extrapolation << '\n';

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << table.to_csv();
    std::cout << "wrote " << csv_path << '\n';
  }
  return 0;
}
