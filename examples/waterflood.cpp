// Two-phase waterflood (IMPES) — the nonlinear multiphase system the
// paper's single-phase kernel is the "key preliminary step" towards
// (Sec. II-A): supercritical-CO2/water-analogue injection sweeping a
// heterogeneous quarter-five-spot pattern. Every outer step solves the
// paper's implicit pressure system (with saturation-dependent mobility)
// and advances the saturation explicitly with upwind fractional flow.
//
//   ./examples/waterflood [--n 32 --steps 20 --dt 0.4 --mu-ratio 2
//                          --sigma 1.0 --out flood]

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "multiphase/impes.hpp"

using namespace fvdf;
using namespace fvdf::multiphase;

namespace {

ScalarImage field_image(const CartesianMesh3D& mesh, const std::vector<f64>& field) {
  ScalarImage image;
  image.nx = mesh.nx();
  image.ny = mesh.ny();
  image.values.assign(field.begin(),
                      field.begin() + static_cast<std::ptrdiff_t>(image.nx * image.ny));
  return image;
}

} // namespace

int main(int argc, char** argv) {
  i64 n = 32, steps = 20, seed = 3;
  f64 dt = 0.4, mu_ratio = 2.0, sigma = 1.0;
  std::string out = "flood";
  CliParser cli("waterflood", "two-phase IMPES waterflood on a heterogeneous "
                              "quarter five-spot");
  cli.add_i64("n", &n, "lateral cells (n x n, single layer)");
  cli.add_i64("steps", &steps, "outer (pressure) steps");
  cli.add_i64("seed", &seed, "permeability seed");
  cli.add_f64("dt", &dt, "outer step size");
  cli.add_f64("mu-ratio", &mu_ratio, "resident/injected viscosity ratio");
  cli.add_f64("sigma", &sigma, "log-permeability standard deviation");
  std::string save_path, load_path;
  cli.add_string("out", &out, "artifact prefix");
  cli.add_string("save", &save_path, "write a restart checkpoint here");
  cli.add_string("load", &load_path, "resume the saturation from this checkpoint");
  if (!cli.parse(argc, argv)) return 0;

  CartesianMesh3D mesh(n, n, 1);
  Rng rng(static_cast<u64>(seed));
  const auto perm = perm::lognormal(mesh, rng, 0.0, sigma);
  auto bc = DirichletSet::injector_producer(mesh, 10.0, 0.0);

  ImpesOptions options;
  options.dt = dt;
  options.steps = steps;
  options.fluids.mu_n = mu_ratio;
  options.relperm.srw = 0.1;
  options.relperm.srn = 0.1;
  options.cg.tolerance = 1e-20;
  options.record_history = true;

  std::vector<f64> initial_sw;
  if (!load_path.empty()) {
    const auto checkpoint = load_checkpoint(load_path);
    FVDF_CHECK_MSG(checkpoint.nx == n && checkpoint.ny == n,
                   "checkpoint grid mismatch");
    initial_sw = checkpoint.field("saturation");
    std::cout << "resumed saturation from " << load_path << "\n";
  }

  const auto result =
      run_impes(mesh, perm, bc, {mesh.index(0, 0, 0)}, options, std::move(initial_sw));

  if (!save_path.empty()) {
    FieldCheckpoint checkpoint;
    checkpoint.nx = n;
    checkpoint.ny = n;
    checkpoint.nz = 1;
    checkpoint.fields["saturation"] = result.saturation;
    checkpoint.fields["pressure"] = result.pressure;
    save_checkpoint(save_path, checkpoint);
    std::cout << "checkpoint written to " << save_path << "\n";
  }

  std::cout << "waterflood: " << mesh.describe() << ", viscosity ratio M="
            << mu_ratio << "\n"
            << "pressure solves: " << result.pressure_iterations.size()
            << " (CG iterations first/last: " << result.pressure_iterations.front()
            << "/" << result.pressure_iterations.back() << ")\n"
            << "saturation sub-steps: " << result.total_substeps << "\n"
            << "injected " << result.injected << ", produced " << result.produced
            << ", mass-balance error " << result.mass_balance_error << "\n\n";

  // Breakthrough diagnostics: water cut at the producer-adjacent cell.
  Table history("Sweep history");
  history.set_header({"step", "time", "mean Sw", "front extent (Sw>0.3 cells)"});
  for (std::size_t s = 0; s < result.saturation_history.size();
       s += std::max<std::size_t>(1, result.saturation_history.size() / 8)) {
    const auto& sw = result.saturation_history[s];
    f64 mean = 0;
    u64 swept = 0;
    for (f64 v : sw) {
      mean += v;
      if (v > 0.3) ++swept;
    }
    history.add_row({std::to_string(s), fmt_fixed(static_cast<f64>(s) * dt, 2),
                     fmt_fixed(mean / static_cast<f64>(sw.size()), 4),
                     std::to_string(swept)});
  }
  std::cout << history << '\n';

  const ScalarImage sw_image = field_image(mesh, result.saturation);
  write_ppm(sw_image, out + "_saturation.ppm");
  write_ppm(field_image(mesh, result.pressure), out + "_pressure.ppm");
  std::cout << "final water saturation (injector upper-left):\n"
            << ascii_heatmap(sw_image, 48, 20) << '\n'
            << "artifacts: " << out << "_saturation.ppm, " << out
            << "_pressure.ppm\n";
  return result.all_converged && result.mass_balance_error < 1e-8 ? 0 : 1;
}
