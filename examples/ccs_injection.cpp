// CCS injection scenario — the workload the paper's introduction motivates:
// pressure response to supercritical-CO2 injection in a heterogeneous
// storage formation (Fig. 5's setup, scaled to laptop size).
//
// The geomodel combines sedimentary layering with high-permeability
// fluvial channels; the injector well pins the top-left column, a
// monitoring/relief well pins the bottom-right. The pressure solve runs on
// the host oracle, is cross-validated on the simulated dataflow device,
// and writes the Fig.-5-style artifacts (PPM raster, CSV, ASCII heatmap)
// per depth layer.
//
//   ./examples/ccs_injection [--nx 64 --ny 64 --nz 6 --channels 4
//                             --injector-pressure 2.0 --out ccs]

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"

using namespace fvdf;

namespace {

ScalarImage layer_image(const CartesianMesh3D& mesh, const std::vector<f64>& field,
                        i64 z) {
  ScalarImage image;
  image.nx = mesh.nx();
  image.ny = mesh.ny();
  image.values.resize(static_cast<std::size_t>(image.nx * image.ny));
  for (i64 y = 0; y < image.ny; ++y)
    for (i64 x = 0; x < image.nx; ++x)
      image.values[static_cast<std::size_t>(y * image.nx + x)] =
          field[static_cast<std::size_t>(mesh.index(x, y, z))];
  return image;
}

} // namespace

int main(int argc, char** argv) {
  i64 nx = 64, ny = 64, nz = 6, channels = 4, seed = 11;
  f64 injector_pressure = 2.0, producer_pressure = 0.0, viscosity = 1.0;
  std::string out = "ccs";
  CliParser cli("ccs_injection", "CO2-injection pressure study on a layered, "
                                 "channelized storage formation");
  cli.add_i64("nx", &nx, "cells in x");
  cli.add_i64("ny", &ny, "cells in y");
  cli.add_i64("nz", &nz, "depth layers");
  cli.add_i64("channels", &channels, "number of high-permeability channels");
  cli.add_i64("seed", &seed, "geomodel seed");
  cli.add_f64("injector-pressure", &injector_pressure, "pressure at the injector");
  cli.add_f64("producer-pressure", &producer_pressure, "pressure at the producer");
  cli.add_f64("viscosity", &viscosity, "fluid viscosity (constant)");
  cli.add_string("out", &out, "artifact path prefix");
  if (!cli.parse(argc, argv)) return 0;

  // --- geomodel: layered background overlain by channels ---
  CartesianMesh3D mesh(nx, ny, nz);
  Rng rng(static_cast<u64>(seed));
  auto perm = perm::layered(mesh, /*low=*/1.0, /*high=*/50.0, /*thickness=*/2);
  {
    const auto channel_field =
        perm::channelized(mesh, rng, 1.0, 500.0, static_cast<int>(channels));
    for (std::size_t i = 0; i < perm.size(); ++i)
      perm.data()[i] = std::max(perm.data()[i], channel_field.data()[i]);
  }
  auto bc = DirichletSet::injector_producer(mesh, injector_pressure, producer_pressure);
  const FlowProblem problem(mesh, std::move(perm), viscosity, std::move(bc));

  std::cout << "geomodel: " << mesh.describe() << ", " << channels
            << " channels over layered background\n";

  // --- solve ---
  CgOptions options;
  options.tolerance = 1e-20;
  options.track_history = true;
  const auto result = solve_pressure_host(problem, options);
  std::cout << "solve: " << result.cg.iterations << " CG iterations, Eq.(3) residual "
            << result.final_residual_norm
            << (result.cg.converged ? "" : "  [NOT converged]") << "\n\n";

  // --- per-layer artifacts + plume-pressure summary ---
  Table summary("Per-layer pressure summary (overpressure drives plume migration)");
  summary.set_header({"layer", "min p", "max p", "mean p", "artifact"});
  for (i64 z = 0; z < nz; ++z) {
    const ScalarImage image = layer_image(mesh, result.pressure, z);
    f64 lo = 1e300, hi = -1e300, sum = 0;
    for (f64 v : image.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    const std::string path = out + "_layer" + std::to_string(z) + ".ppm";
    write_ppm(image, path);
    summary.add_row({std::to_string(z), fmt_fixed(lo, 3), fmt_fixed(hi, 3),
                     fmt_fixed(sum / static_cast<f64>(image.values.size()), 3), path});
  }
  write_csv(layer_image(mesh, result.pressure, 0), out + "_layer0.csv");
  std::cout << summary << '\n';

  std::cout << "Top layer (injector upper-left, producer lower-right):\n"
            << ascii_heatmap(layer_image(mesh, result.pressure, 0)) << '\n';

  // --- cross-validate the scenario on the simulated dataflow device ---
  const i64 small_n = std::min<i64>(nx, 16);
  CartesianMesh3D small_mesh(small_n, small_n, nz);
  Rng small_rng(static_cast<u64>(seed));
  auto small_perm = perm::layered(small_mesh, 1.0, 50.0, 2);
  const auto small_channels =
      perm::channelized(small_mesh, small_rng, 1.0, 500.0, 2);
  for (std::size_t i = 0; i < small_perm.size(); ++i)
    small_perm.data()[i] = std::max(small_perm.data()[i], small_channels.data()[i]);
  const FlowProblem small_problem(
      small_mesh, std::move(small_perm), viscosity,
      DirichletSet::injector_producer(small_mesh, injector_pressure, producer_pressure));
  core::DataflowConfig df;
  df.tolerance = 1e-12f;
  const auto report = core::validate_against_host(small_problem, df, 1e-22);
  std::cout << "dataflow cross-check (" << small_n << "x" << small_n << "x" << nz
            << "): " << report.summary() << '\n';
  return result.cg.converged && report.rel_l2_error < 1e-3 ? 0 : 1;
}
