// Fabric explorer: programming the simulated wafer-scale engine directly.
//
// This example is a guided tour of the device programming model the solver
// is built on — the level at which the paper's CSL code operates:
//   1. routers and colors: a switch-position ring exchanging data eastward
//      (Fig. 4 / Listing 1) via csl::EastwardExchange;
//   2. the whole-fabric all-reduce (Sec. III-C) summing one value per PE;
//   3. DSD vector instructions with the instruction/traffic ledger that
//      backs Table V.
//
//   ./examples/fabric_explorer [--width 6 --height 4 --nz 16]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "csl/allreduce.hpp"
#include "csl/broadcast.hpp"
#include "wse/fabric.hpp"

using namespace fvdf;
using namespace fvdf::wse;

namespace {

// A PE program that runs the tour: exchange a column eastward, reduce a
// scalar across the fabric, then do some vector arithmetic on the result.
class TourProgram final : public PeProgram {
public:
  explicit TourProgram(u32 nz) : nz_(nz) {}

  void on_start(PeContext& ctx) override {
    exchange_.configure(ctx);
    reduce_.configure(ctx);

    column_ = ctx.memory().alloc_f32("column", nz_);
    from_west_ = ctx.memory().alloc_f32("from_west", nz_);
    // Fill the column with this PE's linear id.
    const f32 id = static_cast<f32>(ctx.coord().y * ctx.fabric_width() + ctx.coord().x);
    ctx.dsd().fmovs_imm(dsd(column_), id);
    ctx.dsd().fmovs_imm(dsd(from_west_), -1.0f);

    // Step 1: Fig. 4's eastward exchange over a single color.
    exchange_.start(ctx, dsd(column_), dsd(from_west_), [this](PeContext& c) {
      // Step 2: all-reduce the first word of the received column (the x=0
      // PE contributes its own id since it has no western neighbor).
      const f32 contribution = c.coord().x == 0
                                   ? c.dsd().load(column_.offset_words)
                                   : c.dsd().load(from_west_.offset_words);
      reduce_.start(c, contribution, [this](PeContext& c2, f32 total) {
        // Step 3: vector arithmetic with the reduced value: column += total.
        auto& e = c2.dsd();
        e.fmacs_imm(dsd(column_), dsd(column_), dsd(column_), 0.0f); // touch
        e.fmuls_imm(dsd(column_), dsd(column_), 1.0f);
        e.fmovs_imm(dsd(from_west_), total);
        e.fadds(dsd(column_), dsd(column_), dsd(from_west_));
        c2.halt();
      });
    });
  }

  void on_task(PeContext& ctx, Color color) override {
    if (exchange_.handles(color)) {
      exchange_.on_task(ctx, color);
    } else if (reduce_.handles(color)) {
      reduce_.on_task(ctx, color);
    }
  }

private:
  u32 nz_;
  csl::EastwardExchange exchange_;
  csl::AllReduce reduce_;
  MemSpan column_{}, from_west_{};
};

} // namespace

int main(int argc, char** argv) {
  i64 width = 6, height = 4, nz = 16;
  CliParser cli("fabric_explorer", "tour of the simulated WSE programming model");
  cli.add_i64("width", &width, "fabric width (PEs)");
  cli.add_i64("height", &height, "fabric height (PEs)");
  cli.add_i64("nz", &nz, "words per PE column");
  if (!cli.parse(argc, argv)) return 0;

  Fabric fabric(width, height);
  fabric.load([&](PeCoord) { return std::make_unique<TourProgram>(static_cast<u32>(nz)); });
  const auto result = fabric.run();

  std::cout << "fabric " << width << "x" << height << ", " << nz
            << "-word columns: " << (result.all_halted ? "completed" : "STUCK")
            << " after " << fmt_count(static_cast<u64>(result.cycles))
            << " cycles (" << fmt_seconds(fabric.seconds(result.cycles)) << " at "
            << fabric.timing().clock_hz / 1e9 << " GHz)\n\n";

  const auto& stats = fabric.stats();
  Table table("Fabric statistics");
  table.set_header({"metric", "value"});
  table.add_row({"messages sent", fmt_count(stats.messages_sent)});
  table.add_row({"wavelet hops", fmt_count(stats.wavelet_hops)});
  table.add_row({"words delivered", fmt_count(stats.words_delivered)});
  table.add_row({"words dropped off-edge", fmt_count(stats.words_dropped)});
  table.add_row({"control wavelets", fmt_count(stats.control_wavelets)});
  table.add_row({"backpressure stalls", fmt_count(stats.flits_stalled)});
  table.add_row({"tasks run", fmt_count(stats.tasks_run)});
  std::cout << table << '\n';

  const OpCounters totals = fabric.total_counters();
  std::cout << "instruction ledger (all PEs): " << totals.summary() << '\n';

  // Every PE must hold the same reduced value; verify via one probe each.
  // (The expected all-reduce total: sum over PEs of the id of their western
  // neighbor, or their own id on the x=0 column.)
  f64 expected = 0;
  for (i64 y = 0; y < height; ++y)
    for (i64 x = 0; x < width; ++x)
      expected += static_cast<f64>(y * width + (x > 0 ? x - 1 : 0));
  std::cout << "all-reduce total on PE(0,0) column: expected " << expected << "\n";
  return result.all_halted ? 0 : 1;
}
