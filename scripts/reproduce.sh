#!/usr/bin/env bash
# One-command reproduction: build, test, regenerate every paper table and
# figure plus the ablations, and run all examples. Outputs land in
# test_output.txt / bench_output.txt and the Fig.-5 artifacts in the CWD.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
(for b in build/bench/*; do [ -f "$b" ] && [ -x "$b" ] && "$b"; done) 2>&1 | tee bench_output.txt

echo "== examples =="
./build/examples/quickstart
./build/examples/ccs_injection --nx 32 --ny 32 --nz 4
./build/examples/scaling_study --max-dim 12 --iters 8
./build/examples/fabric_explorer
./build/examples/transient_injection --n 16 --steps 6
./build/examples/waterflood --n 24 --steps 12
./build/examples/unstructured_well --nr 16 --ntheta 16
./build/tools/fvdf_sim --print-template > /tmp/fvdf_case.ini
sed -i 's|vtk = case.vtk|vtk = /tmp/fvdf_case.vtk|' /tmp/fvdf_case.ini
./build/tools/fvdf_sim /tmp/fvdf_case.ini
