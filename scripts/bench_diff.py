#!/usr/bin/env python3
"""Compare two BENCH_sim_throughput.json files row by row.

    scripts/bench_diff.py BASELINE.json CANDIDATE.json [--fail-above PCT]

Rows are matched on (workload, threads); for each match the per-row wall
time, events/sec and the candidate-over-baseline speedup are printed, plus
rows only one file has. By default the exit status is always 0
(informational). With --fail-above PCT the script is a real gate: it exits
1 if any matched row's wall time regresses by more than PCT percent, or if
any candidate row is not bitwise identical — but only when both files
record the same "hardware_threads". Wall times measured on different
hardware are not comparable, so a hardware mismatch demotes the gate to
informational (exit 0, with a note), which is what lets CI diff a bench
snapshot against the committed baseline regardless of the runner's shape.

Only the standard library is used; the JSON layout is the one
bench/micro_sim_throughput.cpp writes (a top-level "runs" array for the
64x64x8 workload and optional "large_workload.runs" / "xl_workload.runs"
arrays for 128x128x8 / 256x256x8).
"""

import argparse
import json
import sys


def load_rows(path):
    """-> (hardware_threads, {(workload, threads): run-dict})."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}

    def take(runs, workload):
        for run in runs:
            # Rows from other bench schemas (e.g. serve_qps keys runs on
            # "clients") are warned about and skipped, not a KeyError.
            if "threads" not in run:
                print(f"warning: {path}: skipping a {workload!r} row without "
                      f"a 'threads' field (keys: {sorted(run)})",
                      file=sys.stderr)
                continue
            rows[(workload, int(run["threads"]))] = run

    take(doc.get("runs", []), "64x64x8")
    take(doc.get("large_workload", {}).get("runs", []), "128x128x8")
    take(doc.get("xl_workload", {}).get("runs", []), "256x256x8")
    return doc.get("hardware_threads"), rows


def main():
    parser = argparse.ArgumentParser(
        description="diff two micro_sim_throughput bench JSON files")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--fail-above", type=float, metavar="PCT", default=None,
                        help="exit 1 if any row's wall time regresses by more "
                             "than PCT percent or any candidate row is not "
                             "bitwise identical; the timing gate only arms "
                             "when both files record the same "
                             "hardware_threads (default: informational only)")
    args = parser.parse_args()

    base_hw, base = load_rows(args.baseline)
    cand_hw, cand = load_rows(args.candidate)

    header = (f"{'workload':>10} {'thr':>3} {'base wall':>11} {'cand wall':>11} "
              f"{'speedup':>8} {'Mev/s base':>11} {'Mev/s cand':>11}")
    print(f"baseline:  {args.baseline}")
    print(f"candidate: {args.candidate}")
    print(header)
    print("-" * len(header))

    worst_regression_pct = 0.0
    mismatched = False
    for key in sorted(set(base) | set(cand), key=lambda k: (k[0], k[1])):
        workload, threads = key
        b, c = base.get(key), cand.get(key)
        if b is None or c is None:
            side = "baseline" if c is None else "candidate"
            print(f"warning: {workload} threads={threads} is only in the "
                  f"{side} file; skipping the comparison for this row")
            continue
        if "wall_seconds" not in b or "wall_seconds" not in c:
            print(f"warning: {workload} threads={threads} lacks wall_seconds "
                  f"in one file; skipping the comparison for this row")
            continue
        speedup = b["wall_seconds"] / c["wall_seconds"]
        worst_regression_pct = max(worst_regression_pct, (1 / speedup - 1) * 100)
        flags = ""
        if not c.get("bitwise_identical", True):
            flags = "  [candidate NOT bitwise identical]"
            mismatched = True
        print(f"{workload:>10} {threads:>3} {b['wall_seconds']:>10.3f}s "
              f"{c['wall_seconds']:>10.3f}s {speedup:>7.2f}x "
              f"{b.get('events_per_sec', 0.0) / 1e6:>11.3f} "
              f"{c.get('events_per_sec', 0.0) / 1e6:>11.3f}{flags}")

    print(f"worst wall-time regression: {worst_regression_pct:+.2f}%")
    if args.fail_above is None:
        return 0
    if mismatched:
        print("FAIL: candidate rows are not bitwise identical across "
              "thread counts", file=sys.stderr)
        return 1
    if base_hw != cand_hw or base_hw is None:
        # Different machines (or an old file without the field): the wall
        # times are not comparable, so the threshold cannot gate.
        print(f"note: hardware_threads differ (baseline {base_hw}, "
              f"candidate {cand_hw}); timing gate is informational only")
        return 0
    if worst_regression_pct > args.fail_above:
        print(f"FAIL: regression exceeds {args.fail_above}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
