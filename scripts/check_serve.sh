#!/usr/bin/env bash
# Serve-daemon smoke gate (docs/serving.md): boots tools/fvdf_serve on a
# throwaway unix socket + ephemeral HTTP port, then drives it through the
# full protocol surface with a stdlib-only python3 NDJSON client:
#
#   1. a concurrent batch of solves including a duplicate case — every
#      event line must be valid JSON with the documented fields, all
#      solves must converge, and the duplicate must report a cache hit
#      with a pressure_hash bitwise identical to its first submission;
#   2. a cancellation and an impossible deadline — both must come back
#      as well-formed {"event":"error"} objects with the documented
#      codes, not connection drops;
#   3. GET /healthz and GET /stats over HTTP;
#   4. SIGTERM mid-transient-run — the daemon must checkpoint the job
#      into the spool, log its shutdown lines and exit 0; a restarted
#      daemon must log the recovery, finish the job from the checkpoint
#      (stats: completed=1, recovered=1) and clean the spool.
#
#   scripts/check_serve.sh [build-dir]
#
# The daemon log is kept at $WORK/daemon.log (CI uploads it on failure).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
DAEMON="$BUILD/tools/fvdf_serve"
[[ -x "$DAEMON" ]] || { echo "error: $DAEMON not built" >&2; exit 2; }

WORK="$(mktemp -d /tmp/fvdf_check_serve.XXXXXX)"
SOCKET="$WORK/serve.sock"
SPOOL="$WORK/spool"
LOG="$WORK/daemon.log"
echo "check_serve: work dir $WORK"

DAEMON_PID=""
cleanup() {
  [[ -n "$DAEMON_PID" ]] && kill "$DAEMON_PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_daemon() {
  "$DAEMON" --socket "$SOCKET" --http-port 0 --workers 2 \
    --spool-dir "$SPOOL" >>"$LOG" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [[ -S "$SOCKET" ]] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "FAIL: daemon did not come up; log follows" >&2
  cat "$LOG" >&2
  exit 1
}

# ---- Phase 1: batch + duplicate + cancellation + deadline + HTTP. ----
start_daemon
python3 - "$SOCKET" "$LOG" <<'PY'
import json, re, socket, sys, urllib.request

socket_path, log_path = sys.argv[1], sys.argv[2]

CASE = """[mesh]
nx = 12
ny = 12
nz = 2

[perm]
kind = lognormal
sigma = 1.0
seed = %d

[solver]
backend = dataflow
tolerance = 1e-8
"""

TRANSIENT = CASE % 99 + "\n[transient]\nenabled = true\nsteps = 60\ndt = 0.25\n"

class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.file = self.sock.makefile("r", encoding="utf-8")

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def read(self):
        line = self.file.readline()
        if not line:
            raise SystemExit("FAIL: daemon closed the connection early")
        event = json.loads(line)  # every line must be valid JSON
        assert isinstance(event, dict) and "event" in event, line
        return event

    def wait_terminal(self, job_id):
        while True:
            event = self.read()
            if event.get("id") != job_id:
                continue
            if event["event"] == "result":
                for field in ("fingerprint", "cache", "converged",
                              "iterations", "pressure_hash",
                              "setup_seconds", "solve_seconds"):
                    assert field in event, f"result missing {field}: {event}"
                return event
            if event["event"] == "error":
                assert "code" in event and "message" in event, event
                return event

failures = []

def check(ok, what):
    print(("ok:   " if ok else "FAIL: ") + what)
    if not ok:
        failures.append(what)

client = Client(socket_path)
client.send({"op": "ping"})
check(client.read()["event"] == "pong", "ping -> pong")

# Concurrent batch: 4 distinct cases plus a duplicate of the first.
seeds = [1, 2, 3, 4, 1]
for i, seed in enumerate(seeds):
    client.send({"op": "solve", "id": f"batch-{i}", "case": CASE % seed})
results = {f"batch-{i}": client.wait_terminal(f"batch-{i}")
           for i in range(len(seeds))}
for job_id, result in results.items():
    check(result["event"] == "result" and result["converged"],
          f"{job_id} converged")
check(results["batch-0"]["cache"] == "miss", "first submission is a miss")
check(results["batch-4"]["cache"] == "hit",
      "duplicate case is a cache hit")
check(results["batch-4"]["pressure_hash"] == results["batch-0"]["pressure_hash"],
      "duplicate result bitwise identical to first submission")
check(results["batch-4"]["fingerprint"] == results["batch-0"]["fingerprint"],
      "duplicate case shares the fingerprint")

# Cancellation: long transient job, cancelled after its first step event.
client.send({"op": "solve", "id": "doomed", "case": TRANSIENT,
             "stream_residuals": True})
while True:
    event = client.read()
    if event.get("id") == "doomed" and event["event"] in ("step", "result"):
        break
client.send({"op": "cancel", "id": "doomed"})
acked = client.read()
check(acked["event"] == "ok" and acked.get("found") is True,
      "cancel acknowledged")
terminal = client.wait_terminal("doomed")
check(terminal["event"] == "error" and terminal.get("code") == "cancelled",
      f"cancellation is a well-formed error event (got {terminal})")

# Deadline: a budget no solve can meet expires as a deadline error.
client.send({"op": "solve", "id": "late", "case": TRANSIENT,
             "deadline_seconds": 1e-6})
terminal = client.wait_terminal("late")
check(terminal["event"] == "error" and terminal.get("code") == "deadline",
      f"deadline is a well-formed error event (got {terminal})")

# Malformed request: still a connection-level error event, not a drop.
client.send({"op": "no_such_op"})
event = client.read()
check(event["event"] == "error" and event.get("code") == "bad_request",
      "unknown op yields bad_request")

# Stats document shape, and the cache counters saw the duplicate.
client.send({"op": "stats"})
stats = client.read()
check(stats["event"] == "stats" and "cache" in stats and "jobs" in stats,
      "stats document has cache + jobs sections")
check(stats["cache"]["hits"] >= 1, "stats counted the cache hit")

# HTTP: healthz + stats on the ephemeral port the daemon logged.
with open(log_path, encoding="utf-8") as f:
    match = re.search(r"http 127\.0\.0\.1:(\d+)", f.read())
check(match is not None, "daemon logged its HTTP port")
if match:
    port = int(match.group(1))
    body = urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10).read()
    check(body == b"ok\n", "GET /healthz")
    doc = json.load(urllib.request.urlopen(
        f"http://127.0.0.1:{port}/stats", timeout=10))
    check("cache" in doc and "jobs" in doc, "GET /stats parses")

if failures:
    raise SystemExit(1)
PY

# ---- Phase 2: SIGTERM mid-run checkpoints; a restart resumes. ----
python3 - "$SOCKET" <<'PY'
import json, socket, sys

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
file = sock.makefile("r", encoding="utf-8")
case = """[mesh]
nx = 12
ny = 12
nz = 2

[perm]
kind = lognormal
sigma = 1.0
seed = 7

[solver]
backend = dataflow
tolerance = 1e-8

[transient]
enabled = true
steps = 60
dt = 0.25
"""
sock.sendall((json.dumps({"op": "solve", "id": "resumable", "case": case,
                          "stream_residuals": True}) + "\n").encode())
# Wait until a few steps are done (and therefore checkpointed).
while True:
    event = json.loads(file.readline())
    if event.get("id") == "resumable" and event.get("event") == "step" \
            and event.get("step", 0) >= 2:
        break
print("ok:   resumable job is mid-run")
PY

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || { echo "FAIL: daemon exited non-zero on SIGTERM" >&2; exit 1; }
DAEMON_PID=""
grep -q "fvdf_serve stopping" "$LOG" || { echo "FAIL: no shutdown log line" >&2; exit 1; }
grep -q "fvdf_serve stopped" "$LOG" || { echo "FAIL: no stopped log line" >&2; exit 1; }
[[ -f "$SPOOL/resumable.case.ini" && -f "$SPOOL/resumable.ckpt" ]] || {
  echo "FAIL: SIGTERM did not leave the job spooled" >&2; ls -l "$SPOOL" >&2; exit 1; }
echo "ok:   SIGTERM checkpointed the in-flight job and exited 0"

start_daemon
grep -q "recovered 1 spooled job" "$LOG" || {
  echo "FAIL: restarted daemon did not log the recovery" >&2
  cat "$LOG" >&2; exit 1; }
echo "ok:   restarted daemon recovered the spooled job"

# The recovered job finishes in the background; poll stats until done.
python3 - "$SOCKET" <<'PY'
import json, socket, sys, time

def stats(path):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    sock.sendall(b'{"op":"stats"}\n')
    doc = json.loads(sock.makefile("r", encoding="utf-8").readline())
    sock.close()
    return doc

deadline = time.time() + 120
while time.time() < deadline:
    doc = stats(sys.argv[1])
    jobs = doc["jobs"]
    if jobs["completed"] >= 1 and jobs["running"] == 0 \
            and jobs["queued"] == 0:
        assert jobs["recovered"] == 1, doc
        print("ok:   recovered job ran to completion from its checkpoint")
        raise SystemExit(0)
    time.sleep(0.5)
raise SystemExit("FAIL: recovered job did not finish within 120s")
PY

[[ ! -e "$SPOOL/resumable.ckpt" ]] || { echo "FAIL: spool not cleaned" >&2; exit 1; }
echo "ok:   spool cleaned after the recovered job finished"

# Clean daemon stop via the protocol this time.
python3 - "$SOCKET" <<'PY'
import socket, sys
sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
sock.sendall(b'{"op":"shutdown"}\n')
sock.makefile("r").readline()
PY
wait "$DAEMON_PID" || { echo "FAIL: daemon exited non-zero on shutdown op" >&2; exit 1; }
DAEMON_PID=""

echo "check_serve: PASS"
