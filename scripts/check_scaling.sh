#!/usr/bin/env bash
# Parallel-scaling gate: the sharded fabric engine must actually get
# faster with worker threads, not just stay correct. Runs the large
# (128x128x8) sim-throughput workload at 1 and 4 threads via
# bench/micro_sim_throughput and fails if the 4-thread run is not at
# least MIN_SPEEDUP_X times faster than the 1-thread run.
#
# Hosts with fewer than 4 hardware threads cannot demonstrate scaling;
# there the gate degrades to a no-regression check (4 workers on a small
# core count must not be catastrophically slower than serial — the
# worker pool parks on a futex and must not spin) plus a layout-identity
# gate: the auto 2D tiling, forced 1D row strips and a serial single
# shard must produce bitwise-identical solves (correctness stays
# checkable even where speed is not). With --profile-host the bench also
# prints per-tile stall attribution (worked / window-limited /
# backpressure / starved per tile) and the critical-path speedup bound,
# so a failed or degraded gate names the bottleneck tile.
#
# A second, serial gate compares the bytecode device-program engine
# (the default) against the legacy virtual-dispatch engine on the small
# (64x64x8) workload, best of SERIAL_REPS runs each: on a quiet host
# with real parallel headroom the interpreter + SIMD DSD path must be
# at least SERIAL_MIN_SPEEDUP_X faster; small hosts (fewer than 4
# hardware threads) and noisy ones (>10% run-to-run spread, which
# swamps the margin) degrade to a no-regression check
# (<= SERIAL_MAX_REGRESSION_X).
#
#   scripts/check_scaling.sh [build-dir]
#
# Environment knobs: MIN_SPEEDUP_X (1.2), MAX_OVERSUB_SLOWDOWN_X (1.5),
# THREADS (4), SERIAL_MIN_SPEEDUP_X (1.8), SERIAL_MAX_REGRESSION_X
# (1.10), SERIAL_REPS (3).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
MIN_SPEEDUP_X="${MIN_SPEEDUP_X:-1.2}"
MAX_OVERSUB_SLOWDOWN_X="${MAX_OVERSUB_SLOWDOWN_X:-1.5}"
THREADS="${THREADS:-4}"
SERIAL_MIN_SPEEDUP_X="${SERIAL_MIN_SPEEDUP_X:-1.8}"
SERIAL_MAX_REGRESSION_X="${SERIAL_MAX_REGRESSION_X:-1.10}"
SERIAL_REPS="${SERIAL_REPS:-3}"
BENCH="$BUILD/bench/micro_sim_throughput"

if [[ ! -x "$BENCH" ]]; then
  echo "building micro_sim_throughput in $BUILD"
  cmake --build "$BUILD" --target micro_sim_throughput -j > /dev/null
fi

CSV="$(mktemp)"
JSON="$(mktemp)"
LOG="$(mktemp)"
HOSTDIR="$(mktemp -d)"
trap 'rm -f "$CSV" "$JSON" "$LOG"; rm -rf "$HOSTDIR"' EXIT

# On a failed or degraded parallel gate, show where the worker threads'
# wall time actually went: the host profiler's utilization / stall summary
# and its critical-path bound separate "engine overhead" from "this
# workload admits no more parallelism" (docs/observability.md, "Host
# profiling"). One extra profiled solve, so only paid when the gate needs
# explaining.
dump_host_profile() {
  local fp="$BUILD/tools/fabric_profile"
  if [[ ! -x "$fp" ]]; then
    cmake --build "$BUILD" --target fabric_profile -j > /dev/null
  fi
  echo "---- host-profiler summary (128x128x8, $THREADS threads) ----"
  "$fp" --fabric 128x128 --nz 8 --iters 10 --tolerance 0 --level off \
        --sim-threads "$THREADS" --host --out "$HOSTDIR" || true
  echo "-------------------------------------------------------------"
}

# ---- lookahead window provenance -----------------------------------
# The sharded engine's channel-lookahead windows are what the speedup
# below rests on. Print the bytecode-derived table next to the
# manifest-derived one (fabric_lint exits non-zero if the abstract
# interpreter ever proves a *looser* window than the declarations).
LINT="$BUILD/tools/fabric_lint"
if [[ ! -x "$LINT" ]]; then
  echo "building fabric_lint in $BUILD"
  cmake --build "$BUILD" --target fabric_lint -j > /dev/null
fi
echo "---- channel-lookahead windows (bytecode vs manifest) ----"
"$LINT" --lookahead --fabric 16x16 --sim-threads "$THREADS"
echo "----------------------------------------------------------"

# Sweep exactly the two points the gate compares so CI time stays
# bounded; the small workload rides along as the bitwise-identity check.
# --profile-host makes the bench print the critical-path max-speedup
# bound per run (the profiler's own overhead is gated <= 5% by
# scripts/check_telemetry_overhead.sh and applies to both sweep points,
# so the speedup ratio is unaffected).
"$BENCH" --threads-sweep "1,$THREADS" --profile-host \
  --out "$JSON" --csv "$CSV" | tee "$LOG"

HW="$(nproc)"
read -r WALL1 WALL4 IDENT < <(awk -F, '
  $1 == "128x128x8" && $2 == 1 { w1 = $3 }
  $1 == "128x128x8" && $2 == '"$THREADS"' { w4 = $3; id = $7 }
  END { print w1, (w4 == "" ? "none" : w4), (id == "" ? "true" : id) }
' "$CSV")

if [[ -z "$WALL1" ]]; then
  echo "FAIL: no 128x128x8 1-thread row in bench output" >&2
  exit 1
fi

echo "128x128x8 CG: 1-thread ${WALL1}s, ${THREADS}-thread ${WALL4}s (host: $HW hardware threads)"

# The bench printed one "critical-path bound" line per run; the one after
# the 128x128x8 THREADS-row is the measured speedup's theoretical ceiling.
BOUND_LINE="$(awk '/^128x128x8 threads='"$THREADS"':/ { f = 1; next }
                   f && /critical-path bound/ { sub(/^ */, ""); print; exit }
                   f && /^[^ ]/ { f = 0 }' "$LOG")"

# On hosts that cannot demonstrate scaling, demonstrate layout
# invariance instead: 2D tiles vs 1D strips vs serial, bit for bit.
check_layout_identity() {
  echo "---- layout identity (auto 2D vs 1D strips vs serial, 64x64x8) ----"
  "$BENCH" --skip-large --threads-sweep "$THREADS" --check-layout-identity \
      --out "$JSON" --csv "$CSV" \
    || { echo "FAIL: shard layouts are not bitwise identical" >&2; exit 1; }
  echo "-------------------------------------------------------------------"
}

if [[ "$WALL4" == "none" ]]; then
  # Single-core host: the bench skips the multi-thread large row
  # entirely; only the serial engine gate below remains meaningful.
  echo "SKIP: host has no parallelism to measure; serial row recorded"
  check_layout_identity
elif [[ "$IDENT" != "true" ]]; then
  echo "FAIL: ${THREADS}-thread result not bitwise identical to 1-thread" >&2
  exit 1
elif (( HW >= 4 )); then
  awk -v w1="$WALL1" -v w4="$WALL4" -v min="$MIN_SPEEDUP_X" 'BEGIN {
    speedup = w1 / w4
    printf "speedup: %.2fx (required >= %.2fx)\n", speedup, min
    exit !(speedup >= min)
  }' && { [[ -z "$BOUND_LINE" ]] || echo "  vs $BOUND_LINE"; } \
     || { echo "FAIL: parallel engine does not scale" >&2
          [[ -z "$BOUND_LINE" ]] || echo "  vs $BOUND_LINE"
          dump_host_profile
          exit 1; }
else
  # Degraded gate: no parallel headroom to demonstrate scaling, so show
  # what the profiler saw instead of a speedup verdict.
  [[ -z "$BOUND_LINE" ]] || echo "  $BOUND_LINE (degraded gate: host too small to approach it)"
  awk -v w1="$WALL1" -v w4="$WALL4" -v max="$MAX_OVERSUB_SLOWDOWN_X" 'BEGIN {
    slowdown = w4 / w1
    printf "oversubscribed slowdown: %.2fx (allowed <= %.2fx)\n", slowdown, max
    exit !(slowdown <= max)
  }' || { echo "FAIL: oversubscribed workers burn the core (spinning?)" >&2
          dump_host_profile
          exit 1; }
  check_layout_identity
fi

# ---- serial engine gate: bytecode interpreter vs legacy dispatch ----

serial_walls() { # engine -> "min max" wall_seconds over SERIAL_REPS runs
  local engine="$1" lo="" hi="" wall
  for _ in $(seq "$SERIAL_REPS"); do
    "$BENCH" --skip-large --threads-sweep 1 --engine "$engine" \
      --out "$JSON" --csv "$CSV" > /dev/null
    wall="$(awk -F, '$1 == "64x64x8" && $2 == 1 { print $3 }' "$CSV")"
    lo="$(awk -v a="${lo:-inf}" -v b="$wall" \
      'BEGIN { print (a == "inf" || b < a) ? b : a }')"
    hi="$(awk -v a="${hi:-0}" -v b="$wall" 'BEGIN { print (b > a) ? b : a }')"
  done
  echo "$lo $hi"
}

read -r LEGACY_WALL LEGACY_MAX < <(serial_walls legacy)
read -r BYTECODE_WALL BYTECODE_MAX < <(serial_walls bytecode)
echo "64x64x8 serial (best of $SERIAL_REPS): legacy ${LEGACY_WALL}s, bytecode ${BYTECODE_WALL}s"

# A host whose repeated runs spread by more than 10% cannot resolve the
# speedup margin; treat it like a small host and only require
# no-regression.
NOISY="$(awk -v ll="$LEGACY_WALL" -v lh="$LEGACY_MAX" \
             -v bl="$BYTECODE_WALL" -v bh="$BYTECODE_MAX" 'BEGIN {
  print (lh / ll > 1.10 || bh / bl > 1.10) ? 1 : 0
}')"
if (( NOISY )); then
  echo "note: run-to-run spread exceeds 10%; degrading to the no-regression bound"
fi

if (( HW >= 4 && !NOISY )); then
  awk -v l="$LEGACY_WALL" -v b="$BYTECODE_WALL" -v min="$SERIAL_MIN_SPEEDUP_X" 'BEGIN {
    speedup = l / b
    printf "bytecode-vs-legacy speedup: %.2fx (required >= %.2fx)\n", speedup, min
    exit !(speedup >= min)
  }' || { echo "FAIL: bytecode engine does not beat legacy dispatch" >&2; exit 1; }
else
  awk -v l="$LEGACY_WALL" -v b="$BYTECODE_WALL" -v max="$SERIAL_MAX_REGRESSION_X" 'BEGIN {
    slowdown = b / l
    printf "bytecode-vs-legacy: %.2fx of legacy time (no-regression bound <= %.2fx; host too small for the speedup gate)\n", slowdown, max
    exit !(slowdown <= max)
  }' || { echo "FAIL: bytecode engine regresses vs legacy dispatch" >&2; exit 1; }
fi
echo "OK"
