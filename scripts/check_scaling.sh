#!/usr/bin/env bash
# Parallel-scaling gate: the sharded fabric engine must actually get
# faster with worker threads, not just stay correct. Runs the large
# (128x128x8) sim-throughput workload at 1 and 4 threads via
# bench/micro_sim_throughput and fails if the 4-thread run is not at
# least MIN_SPEEDUP_X times faster than the 1-thread run.
#
# Hosts with fewer than 4 hardware threads cannot demonstrate scaling;
# there the gate degrades to a no-regression check (4 workers on a small
# core count must not be catastrophically slower than serial — the
# worker pool parks on a futex and must not spin).
#
#   scripts/check_scaling.sh [build-dir]
#
# Environment knobs: MIN_SPEEDUP_X (1.2), MAX_OVERSUB_SLOWDOWN_X (1.5),
# THREADS (4).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
MIN_SPEEDUP_X="${MIN_SPEEDUP_X:-1.2}"
MAX_OVERSUB_SLOWDOWN_X="${MAX_OVERSUB_SLOWDOWN_X:-1.5}"
THREADS="${THREADS:-4}"
BENCH="$BUILD/bench/micro_sim_throughput"

if [[ ! -x "$BENCH" ]]; then
  echo "building micro_sim_throughput in $BUILD"
  cmake --build "$BUILD" --target micro_sim_throughput -j > /dev/null
fi

CSV="$(mktemp)"
JSON="$(mktemp)"
trap 'rm -f "$CSV" "$JSON"' EXIT

# Sweep exactly the two points the gate compares so CI time stays
# bounded; the small workload rides along as the bitwise-identity check.
"$BENCH" --threads-sweep "1,$THREADS" --out "$JSON" --csv "$CSV"

HW="$(nproc)"
read -r WALL1 WALL4 IDENT < <(awk -F, '
  $1 == "128x128x8" && $2 == 1 { w1 = $3 }
  $1 == "128x128x8" && $2 == '"$THREADS"' { w4 = $3; id = $7 }
  END { print w1, (w4 == "" ? "none" : w4), (id == "" ? "true" : id) }
' "$CSV")

if [[ -z "$WALL1" ]]; then
  echo "FAIL: no 128x128x8 1-thread row in bench output" >&2
  exit 1
fi

echo "128x128x8 CG: 1-thread ${WALL1}s, ${THREADS}-thread ${WALL4}s (host: $HW hardware threads)"

if [[ "$WALL4" == "none" ]]; then
  # Single-core host: the bench skips the multi-thread large row entirely.
  echo "SKIP: host has no parallelism to measure; serial row recorded"
  exit 0
fi

if [[ "$IDENT" != "true" ]]; then
  echo "FAIL: ${THREADS}-thread result not bitwise identical to 1-thread" >&2
  exit 1
fi

if (( HW >= 4 )); then
  awk -v w1="$WALL1" -v w4="$WALL4" -v min="$MIN_SPEEDUP_X" 'BEGIN {
    speedup = w1 / w4
    printf "speedup: %.2fx (required >= %.2fx)\n", speedup, min
    exit !(speedup >= min)
  }' || { echo "FAIL: parallel engine does not scale" >&2; exit 1; }
else
  awk -v w1="$WALL1" -v w4="$WALL4" -v max="$MAX_OVERSUB_SLOWDOWN_X" 'BEGIN {
    slowdown = w4 / w1
    printf "oversubscribed slowdown: %.2fx (allowed <= %.2fx)\n", slowdown, max
    exit !(slowdown <= max)
  }' || { echo "FAIL: oversubscribed workers burn the core (spinning?)" >&2; exit 1; }
fi
echo "OK"
