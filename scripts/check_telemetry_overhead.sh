#!/usr/bin/env bash
# Telemetry-overhead gate: the compiled-in-but-unattached telemetry hooks
# (the default build at --level off — one null-pointer test per hot-path
# site) must not slow the simulator measurably against a build with the
# hooks compiled out entirely (-DFVDF_TELEMETRY=OFF).
#
# Method: build both configurations, run the same 40x40x8 CG solve
# REPS times in each via `fabric_profile --level off --reps`, compare
# medians, fail if the default build's median exceeds the OFF build's by
# more than MAX_REGRESSION_PCT.
#
# A second gate times the host-side execution profiler (--host,
# docs/observability.md "Host profiling") against the same binary without
# it on a 64x64x8 solve: attaching the profiler must cost at most
# MAX_PROFILER_REGRESSION_PCT. Skipped when PROFILER_REPS=0.
#
#   scripts/check_telemetry_overhead.sh [build-dir-on] [build-dir-off]
#
# Environment knobs: FABRIC (40x40), NZ (8), ITERS (30), REPS (7),
# MAX_REGRESSION_PCT (5), PROFILER_FABRIC (64x64), PROFILER_ITERS (10),
# PROFILER_REPS (5), PROFILER_THREADS (1), MAX_PROFILER_REGRESSION_PCT (5).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_ON="${1:-build-telem-on}"
BUILD_OFF="${2:-build-telem-off}"
FABRIC="${FABRIC:-40x40}"
NZ="${NZ:-8}"
ITERS="${ITERS:-30}"
REPS="${REPS:-7}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-5}"
PROFILER_FABRIC="${PROFILER_FABRIC:-64x64}"
PROFILER_ITERS="${PROFILER_ITERS:-10}"
PROFILER_REPS="${PROFILER_REPS:-5}"
PROFILER_THREADS="${PROFILER_THREADS:-1}"
MAX_PROFILER_REGRESSION_PCT="${MAX_PROFILER_REGRESSION_PCT:-5}"

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -G Ninja -DCMAKE_BUILD_TYPE=Release "$@" > /dev/null
  cmake --build "$dir" --target fabric_profile -j > /dev/null
}

echo "== building default (telemetry hooks compiled in) -> $BUILD_ON"
configure_and_build "$BUILD_ON"
echo "== building -DFVDF_TELEMETRY=OFF (hooks compiled out) -> $BUILD_OFF"
configure_and_build "$BUILD_OFF" -DFVDF_TELEMETRY=OFF

# Prints the median of the per-rep wall times a fabric_profile timing run
# emits ("rep N: X ms wall, ..."). Extra arguments pass through.
median_ms() {
  local dir="$1" fabric="$2" iters="$3" reps="$4"; shift 4
  "$dir/tools/fabric_profile" --fabric "$fabric" --nz "$NZ" --iters "$iters" \
      --tolerance 0 --level off --reps "$reps" "$@" \
    | awk '/ms wall/ {print $3}' \
    | sort -n \
    | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}'
}

# Interleaving would be fairer under noisy CI neighbours, but one warm-up
# pass per binary plus medians has proven stable enough.
echo "== timing $FABRIC x$NZ CG, $ITERS iterations, $REPS reps per config"
ON_MS="$(median_ms "$BUILD_ON" "$FABRIC" "$ITERS" "$REPS")"
OFF_MS="$(median_ms "$BUILD_OFF" "$FABRIC" "$ITERS" "$REPS")"

awk -v on="$ON_MS" -v off="$OFF_MS" -v max="$MAX_REGRESSION_PCT" 'BEGIN {
  pct = (on / off - 1) * 100
  printf "median wall time: hooks-in %.1f ms, hooks-out %.1f ms (%+.2f%%)\n",
         on, off, pct
  if (pct > max) {
    printf "FAIL: disabled-telemetry overhead %.2f%% exceeds %s%% budget\n",
           pct, max
    exit 1
  }
  printf "OK: within the %s%% budget\n", max
}'

# ---- host-profiler overhead gate ------------------------------------
if [[ "$PROFILER_REPS" == "0" ]]; then
  echo "== host-profiler overhead gate skipped (PROFILER_REPS=0)"
  exit 0
fi

PROF_DIR="$(mktemp -d)"
trap 'rm -rf "$PROF_DIR"' EXIT

echo "== timing $PROFILER_FABRIC x$NZ CG, $PROFILER_ITERS iterations," \
     "$PROFILER_REPS reps, $PROFILER_THREADS thread(s): --host vs plain"
BASE_MS="$(median_ms "$BUILD_ON" "$PROFILER_FABRIC" "$PROFILER_ITERS" \
  "$PROFILER_REPS" --sim-threads "$PROFILER_THREADS")"
PROF_MS="$(median_ms "$BUILD_ON" "$PROFILER_FABRIC" "$PROFILER_ITERS" \
  "$PROFILER_REPS" --sim-threads "$PROFILER_THREADS" --host --out "$PROF_DIR")"

awk -v prof="$PROF_MS" -v base="$BASE_MS" \
    -v max="$MAX_PROFILER_REGRESSION_PCT" 'BEGIN {
  pct = (prof / base - 1) * 100
  printf "median wall time: profiler-on %.1f ms, profiler-off %.1f ms (%+.2f%%)\n",
         prof, base, pct
  if (pct > max) {
    printf "FAIL: host-profiler overhead %.2f%% exceeds %s%% budget\n", pct, max
    exit 1
  }
  printf "OK: within the %s%% budget\n", max
}'
