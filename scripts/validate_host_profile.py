#!/usr/bin/env python3
"""Validate a host_profile.json document against schema and invariants.

    scripts/validate_host_profile.py host_profile.json

Checks (see docs/observability.md, "Host profiling"):
  * schema tag is fvdf.telemetry.host_profile/2 and captured is true;
  * every worker's intervals are sorted, non-overlapping and start at 0;
  * every worker's per-state seconds sum to its accounted wall time
    (which equals the run's wall time up to clock-read jitter);
  * every shard's four stall bins sum to the run's round count;
  * the tile layout is self-consistent: tile_rows * tile_cols equals the
    shard count, each shard's (tile_row, tile_col) matches its row-major
    id, and each tile's PE rectangle is non-empty;
  * every lookahead edge names valid shards, a cardinal direction in
    0..3, and a positive window when it crosses a tile boundary;
  * the critical-path bounds are >= 1, monotone in the thread count,
    exactly 1 at one thread, and capped by the unbounded limit.

Exits 0 when everything holds, 1 with a message otherwise. Standard
library only.
"""

import json
import sys

TOLERANCE = 1e-6  # seconds; accumulated clock-read granularity


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1], "r", encoding="utf-8") as f:
        doc = json.load(f)

    if doc.get("schema") != "fvdf.telemetry.host_profile/2":
        fail(f"unexpected schema tag {doc.get('schema')!r}")
    if not doc.get("captured"):
        fail("captured is false (profiler never saw a run)")

    wall = doc["wall_seconds"]
    rounds = doc["rounds"]
    if wall <= 0 or rounds <= 0:
        fail(f"empty run: wall {wall}, rounds {rounds}")

    timelines = doc["worker_timelines"]
    if len(timelines) != doc["workers"]:
        fail("worker_timelines length != workers")
    for tl in timelines:
        w = tl["worker"]
        accounted = sum(tl["seconds"].values())
        if abs(accounted - tl["accounted_seconds"]) > TOLERANCE:
            fail(f"worker {w}: per-state seconds sum {accounted} != "
                 f"accounted_seconds {tl['accounted_seconds']}")
        if abs(accounted - wall) > TOLERANCE:
            fail(f"worker {w}: accounted {accounted} != wall {wall}")
        cursor = 0.0
        for state, begin, end in tl["intervals"]:
            if begin < cursor - TOLERANCE or end <= begin:
                fail(f"worker {w}: bad interval [{begin}, {end}) "
                     f"({state}) after cursor {cursor}")
            cursor = end
        # Detail may be capped, but what is recorded must fit the wall.
        if cursor > wall + TOLERANCE:
            fail(f"worker {w}: intervals extend past wall ({cursor} > {wall})")
        if tl["intervals_dropped"] == 0 and tl["intervals"] and \
                abs(cursor - wall) > TOLERANCE:
            fail(f"worker {w}: intervals end at {cursor}, wall is {wall}")

    stalls = doc["shard_stalls"]
    if len(stalls) != doc["shards"]:
        fail("shard_stalls length != shards")
    tile_rows, tile_cols = doc["tile_rows"], doc["tile_cols"]
    if tile_cols > 0 and tile_rows * tile_cols != doc["shards"]:
        fail(f"tile grid {tile_rows}x{tile_cols} does not cover "
             f"{doc['shards']} shards")
    for s in stalls:
        bins = (s["rounds_worked"] + s["rounds_window_limited"] +
                s["rounds_backpressure"] + s["rounds_starved"])
        if bins != rounds:
            fail(f"shard {s['shard']}: stall bins sum to {bins}, "
                 f"run has {rounds} rounds")
        if tile_cols > 0:
            if (s.get("tile_row") != s["shard"] // tile_cols or
                    s.get("tile_col") != s["shard"] % tile_cols):
                fail(f"shard {s['shard']}: tile coordinates are not the "
                     f"row-major id")
        if "row_begin" in s and (s["row_end"] <= s["row_begin"] or
                                 s["col_end"] <= s["col_begin"]):
            fail(f"shard {s['shard']}: empty tile rectangle")

    for e in doc.get("lookahead", []):
        if not (0 <= e["from"] < doc["shards"] and
                0 <= e["to"] < doc["shards"]):
            fail(f"lookahead edge {e['from']}->{e['to']} names an "
                 f"unknown shard")
        if not 0 <= e["dir"] <= 3:
            fail(f"lookahead edge {e['from']}->{e['to']}: direction "
                 f"{e['dir']} out of range")
        if e["crosses"] and e["min_batch_cycles"] <= 0:
            fail(f"lookahead edge {e['from']}->{e['to']}: crossing edge "
                 f"with non-positive window {e['min_batch_cycles']}")

    cp = doc["critical_path"]
    unbounded = cp["max_speedup_unbounded"]
    previous = 0.0
    for row in cp["bounds"]:
        bound = row["max_speedup"]
        if bound < 1.0 - TOLERANCE:
            fail(f"bound at {row['threads']} threads is {bound} < 1")
        if row["threads"] == 1 and abs(bound - 1.0) > TOLERANCE:
            fail(f"bound at 1 thread is {bound}, expected exactly 1")
        if bound < previous - TOLERANCE:
            fail(f"bounds not monotone at {row['threads']} threads")
        if bound > unbounded + TOLERANCE:
            fail(f"bound at {row['threads']} threads exceeds the "
                 f"unbounded limit {unbounded}")
        previous = bound

    print(f"OK: {doc['workers']} worker(s), {doc['shards']} shard(s), "
          f"{rounds} round(s), wall {wall:.4f} s, "
          f"unbounded speedup limit {unbounded:.2f}x")
    sys.exit(0)


if __name__ == "__main__":
    main()
