// Table II reproduction: kernel time on CS-2 vs NVIDIA A100/H100 for the
// 750x994x922 mesh, 225 CG iterations, fp32.
//
// Two sections:
//  1. Paper scale via the calibrated analytic models (the packet-level
//     simulator cannot hold 687M cells — see DESIGN.md): our modeled
//     Avg/S.D. next to the paper's measurements, plus the derived
//     speedups (paper: 427.82x vs A100, 209.68x vs H100).
//  2. Reduced scale, *measured*: the same solve run functionally on the
//     packet-level fabric simulator and the CUDA-model emulator, averaged
//     over repeated runs (deterministic simulation -> S.D. = 0), showing
//     that the same code path the model describes actually executes.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "gpu/gpu_solver.hpp"
#include "perf/analytic.hpp"

using namespace fvdf;

namespace {

struct PaperRow {
  const char* arch;
  f64 avg;
  f64 sd;
};
constexpr PaperRow kPaper[] = {
    {"Dataflow/CSL", 0.0542, 0.000014},
    {"A100/CUDA", 23.1879, 0.123267},
    {"H100/CUDA", 11.3861, 0.222566},
};

void paper_scale_section() {
  const i64 nx = 750, ny = 994, nz = 922;
  const u64 cells = static_cast<u64>(nx) * ny * nz;
  const u64 iters = 225;

  const Cs2AnalyticModel cs2;
  const GpuAnalyticModel a100(GpuSpec::a100());
  const GpuAnalyticModel h100(GpuSpec::h100());

  const f64 t_cs2 = cs2.alg1_time(nx, ny, nz, iters);
  const f64 t_a100 = a100.alg1_time(cells, iters);
  const f64 t_h100 = h100.alg1_time(cells, iters);

  Table table("Table II — time for 225 CG iterations on a 750x994x922 mesh (fp32)");
  table.set_header({"Arch/lang", "Ours Avg [s]", "Ours S.D.", "Paper Avg [s]",
                    "Paper S.D.", "ratio ours/paper"});
  const f64 ours[] = {t_cs2, t_a100, t_h100};
  for (int i = 0; i < 3; ++i) {
    table.add_row({kPaper[i].arch, fmt_fixed(ours[i], 4),
                   "0.0000 (model)", fmt_fixed(kPaper[i].avg, 4),
                   fmt_fixed(kPaper[i].sd, 6), fmt_fixed(ours[i] / kPaper[i].avg, 3)});
  }
  std::cout << table << '\n';

  Table speedups("Headline speedups (paper Sec. V-C: 427.82x vs A100, 209.68x vs H100)");
  speedups.set_header({"comparison", "ours", "paper"});
  speedups.add_row({"CS-2 vs A100", fmt_fixed(t_a100 / t_cs2, 2) + "x", "427.82x"});
  speedups.add_row({"CS-2 vs H100", fmt_fixed(t_h100 / t_cs2, 2) + "x", "209.68x"});
  std::cout << speedups << '\n';
}

void reduced_scale_section() {
  // Small enough to simulate packet-by-packet, large enough to be
  // non-trivial: 16x14 fabric, 32-deep columns, 60 fixed iterations.
  const i64 nx = 16, ny = 14, nz = 32;
  const u64 iters = 60;
  const auto problem = FlowProblem::quarter_five_spot(nx, ny, nz, /*seed=*/7, 0.6);

  RunningStats dataflow_stats, gpu_stats;
  constexpr int kRuns = 3;
  for (int run = 0; run < kRuns; ++run) {
    core::DataflowConfig config;
    config.jx_only = false;
    config.tolerance = 0.0f; // fixed-iteration run like the paper's timing
    config.max_iterations = iters;
    const auto result = core::solve_dataflow(problem, config);
    dataflow_stats.add(result.device_seconds);

    gpu::GpuFvSolver solver(problem, GpuSpec::a100(), 1);
    gpu::GpuSolveConfig gpu_config;
    gpu_config.tolerance = 0.0;
    gpu_config.max_iterations = iters;
    const auto gpu_result = solver.solve(gpu_config);
    gpu_stats.add(gpu_result.modeled_seconds);
  }

  Table table("Reduced-scale measured run — " + std::to_string(nx) + "x" +
              std::to_string(ny) + "x" + std::to_string(nz) + ", " +
              std::to_string(iters) + " iterations, " + std::to_string(kRuns) +
              " runs (simulation is deterministic, so S.D. = 0)");
  table.set_header({"Arch (simulated)", "Avg [s]", "S.D."});
  table.add_row({"Dataflow fabric (packet-level sim)",
                 fmt_sci(dataflow_stats.mean(), 4), fmt_sci(dataflow_stats.stddev(), 2)});
  table.add_row({"A100 (CUDA-model + traffic model)", fmt_sci(gpu_stats.mean(), 4),
                 fmt_sci(gpu_stats.stddev(), 2)});
  std::cout << table << '\n';
  std::cout << "Reduced-scale dataflow advantage: "
            << fmt_fixed(gpu_stats.mean() / dataflow_stats.mean(), 2)
            << "x (small problems under-fill the GPU, so the gap exceeds the\n"
               "paper-scale ratio; Table III's small grids show the same effect)\n\n";
}

} // namespace

int main() {
  std::cout << "=== bench/table2_timing — paper Table II ===\n\n";
  paper_scale_section();
  reduced_scale_section();
  return 0;
}
