// google-benchmark micro-kernels: host flux apply (serial/threaded),
// assembled SpMV, BLAS-1, dense oracle, fabric primitives (halo exchange,
// all-reduce), full dataflow CG iterations, and the CUDA-model kernel.
// These track the emulation substrate's own performance (host wall time),
// complementing the simulated-device times of the table benches.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/solver.hpp"
#include "fv/assembled.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "gpu/gpu_solver.hpp"
#include "multiphase/impes.hpp"
#include "solver/blas.hpp"
#include "solver/cg.hpp"
#include "solver/chebyshev.hpp"
#include "umesh/fabric_map.hpp"
#include "umesh/usolve.hpp"

namespace {

using namespace fvdf;

const FlowProblem& cached_problem() {
  static const FlowProblem problem = FlowProblem::quarter_five_spot(24, 24, 24, 3);
  return problem;
}

void BM_HostMatrixFreeApply(benchmark::State& state) {
  const auto sys = cached_problem().discretize<f32>();
  const MatrixFreeOperator<f32> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f32> x(n, 1.0f), y(n);
  for (auto _ : state) {
    op.apply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_HostMatrixFreeApply);

void BM_AssembledCsrApply(benchmark::State& state) {
  const auto sys = cached_problem().discretize<f32>();
  const AssembledOperator<f32> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f32> x(n, 1.0f), y(n);
  for (auto _ : state) {
    op.apply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_AssembledCsrApply);

void BM_BlasDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<f32> a(n, 1.5f), b(n, 2.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blas::dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_BlasDot)->Arg(1 << 12)->Arg(1 << 16);

void BM_BlasAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<f32> x(n, 1.0f), y(n, 0.0f);
  for (auto _ : state) {
    blas::axpy(0.5f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_BlasAxpy)->Arg(1 << 14);

void BM_HostCgIteration(benchmark::State& state) {
  const auto sys = cached_problem().discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  std::vector<f64> b(n, 0.0), y(n);
  b[n / 2] = 1.0;
  for (auto _ : state) {
    CgOptions options;
    options.max_iterations = 10;
    options.tolerance = 0.0;
    const auto result = conjugate_gradient<f64>(
        [&](const f64* in, f64* out) { op.apply(in, out); }, b.data(), y.data(), n,
        options);
    benchmark::DoNotOptimize(result.final_rr);
  }
  // 10 CG iterations per benchmark iteration.
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10);
}
BENCHMARK(BM_HostCgIteration);

void BM_FabricHaloJxRound(benchmark::State& state) {
  // Host cost of simulating one halo+flux round (events/s of the event
  // engine) on a dim x dim fabric.
  const i64 dim = state.range(0);
  const auto problem = FlowProblem::homogeneous_column(dim, dim, 16);
  for (auto _ : state) {
    core::DataflowConfig config;
    config.jx_only = true;
    config.max_iterations = 1;
    const auto result = core::solve_dataflow(problem, config);
    benchmark::DoNotOptimize(result.device_cycles);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * dim * dim);
}
BENCHMARK(BM_FabricHaloJxRound)->Arg(8)->Arg(16);

void BM_FabricCgIteration(benchmark::State& state) {
  const auto problem = FlowProblem::homogeneous_column(8, 8, 16);
  for (auto _ : state) {
    core::DataflowConfig config;
    config.tolerance = 0.0f;
    config.max_iterations = 5;
    const auto result = core::solve_dataflow(problem, config);
    benchmark::DoNotOptimize(result.device_cycles);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 5);
}
BENCHMARK(BM_FabricCgIteration);

void BM_UnstructuredApply(benchmark::State& state) {
  const CartesianMesh3D mesh(20, 20, 10);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh_geom = umesh::UnstructuredMesh::from_cartesian(mesh, field);
  std::vector<f64> mobility(static_cast<std::size_t>(umesh_geom.cell_count()), 1.0);
  DirichletSet bc;
  bc.pin(0, 1.0);
  const umesh::UFlowProblem problem(umesh_geom, std::move(mobility), std::move(bc));
  const umesh::UMatrixFreeOperator op(problem);
  const auto n = static_cast<std::size_t>(op.size());
  std::vector<f64> x(n, 1.0), y(n);
  for (auto _ : state) {
    op.apply(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_UnstructuredApply);

void BM_ImpesStep(benchmark::State& state) {
  const CartesianMesh3D mesh(16, 16, 1);
  const auto perm_field = perm::homogeneous(mesh, 1.0);
  const auto bc = DirichletSet::injector_producer(mesh, 2.0, 0.0);
  multiphase::ImpesOptions options;
  options.steps = 1;
  options.dt = 0.1;
  options.cg.tolerance = 1e-16;
  for (auto _ : state) {
    const auto result = multiphase::run_impes(mesh, perm_field, bc,
                                              {mesh.index(0, 0, 0)}, options);
    benchmark::DoNotOptimize(result.injected);
  }
}
BENCHMARK(BM_ImpesStep);

void BM_HostChebyshevIteration(benchmark::State& state) {
  const auto sys = cached_problem().discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const auto n = static_cast<std::size_t>(sys.cell_count());
  const auto apply = [&](const f64* in, f64* out) { op.apply(in, out); };
  static const SpectralBounds bounds = estimate_spectral_bounds<f64>(apply, n);
  std::vector<f64> b(n, 0.0), y(n);
  b[n / 3] = 1.0;
  for (auto _ : state) {
    ChebyshevOptions options;
    options.max_iterations = 10;
    options.tolerance = 0.0;
    const auto result =
        chebyshev_solve<f64>(apply, b.data(), y.data(), n, bounds, options);
    benchmark::DoNotOptimize(result.final_rr);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 10);
}
BENCHMARK(BM_HostChebyshevIteration);

void BM_MortonMapping(benchmark::State& state) {
  const CartesianMesh3D mesh(32, 32, 8);
  const auto field = perm::homogeneous(mesh, 1.0);
  const auto umesh_geom = umesh::UnstructuredMesh::from_cartesian(mesh, field);
  umesh::MappingOptions options;
  options.fabric_width = 8;
  options.fabric_height = 8;
  for (auto _ : state) {
    const auto mapping =
        umesh::map_cells(umesh_geom, umesh::MappingStrategy::MortonSfc, options);
    benchmark::DoNotOptimize(mapping.pe_of_cell.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          umesh_geom.cell_count());
}
BENCHMARK(BM_MortonMapping);

void BM_GpuModelJxKernel(benchmark::State& state) {
  const auto& problem = cached_problem();
  gpu::GpuFvSolver solver(problem, GpuSpec::a100(), 0);
  for (auto _ : state) {
    const auto result = solver.run_jx_only(1);
    benchmark::DoNotOptimize(result.kernel_launches);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          problem.mesh().cell_count());
}
BENCHMARK(BM_GpuModelJxKernel);

} // namespace

BENCHMARK_MAIN();
