// Figure 6 reproduction: roofline models for the CS-2 (two resources —
// PE-local memory and fabric) and the A100 (HBM), with the matrix-free FV
// kernel placed on each.
//
// The CS-2 kernel point uses (a) the paper's own accounting — AI 0.0895
// F/B vs memory, 3 F/B vs fabric, 1.217 PFLOP/s — and (b) a *measured*
// point with arithmetic intensities taken from the simulator's instruction
// ledger on a reduced-scale run. The A100 point sits at 78% of the HBM
// ceiling per the paper's Nsight characterization.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"
#include "perf/roofline.hpp"

using namespace fvdf;

namespace {

struct MeasuredAi {
  f64 memory;
  f64 fabric;
};

MeasuredAi measured_intensity() {
  // A fixed-iteration CG run on the simulator; the ledger gives exact
  // FLOPs and memory/fabric bytes.
  const auto problem = FlowProblem::homogeneous_column(12, 12, 64);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 15;
  const auto result = core::solve_dataflow(problem, config);
  return {static_cast<f64>(result.counters.total_flops()) /
              static_cast<f64>(result.counters.memory_bytes()),
          static_cast<f64>(result.counters.total_flops()) /
              static_cast<f64>(result.counters.fabric_bytes())};
}

} // namespace

int main() {
  std::cout << "=== bench/fig6_roofline — paper Figure 6 ===\n\n";

  const Cs2Spec cs2;
  const Cs2AnalyticModel cs2_model(cs2);
  const MeasuredAi measured = measured_intensity();
  const f64 achieved = cs2_model.paper_convention_pflops(750, 994, 922, 225);

  RooflineModel cs2_roofline(cs2.name, cs2.peak_flops_fp32);
  cs2_roofline.add_ceiling({"memory", cs2.peak_mem_bw_bytes});
  cs2_roofline.add_ceiling({"fabric", cs2.peak_fabric_bw_bytes});
  cs2_roofline.add_point({"FV kernel vs memory (paper AI)", 0.0895, achieved, 0});
  cs2_roofline.add_point({"FV kernel vs fabric (paper AI)", 3.0, achieved, 1});
  std::cout << cs2_roofline.ascii_chart() << '\n';

  Table cs2_table("CS-2 kernel placement");
  cs2_table.set_header({"quantity", "ours", "paper"});
  cs2_table.add_row({"achieved", fmt_flops(achieved), "1.217 PFLOP/s"});
  cs2_table.add_row({"AI vs memory (paper accounting)", "0.0895 F/B", "0.0895 F/B"});
  cs2_table.add_row({"AI vs memory (measured ledger)", fmt_fixed(measured.memory, 4) + " F/B",
                     "-"});
  cs2_table.add_row({"AI vs fabric (paper accounting)", "3 F/B", "3 F/B"});
  cs2_table.add_row({"AI vs fabric (measured ledger)", fmt_fixed(measured.fabric, 2) + " F/B",
                     "-"});
  cs2_table.add_row({"compute-bound vs memory?",
                     cs2_roofline.compute_bound(0.0895, 0) ? "yes" : "no", "yes"});
  cs2_table.add_row({"compute-bound vs fabric?",
                     cs2_roofline.compute_bound(3.0, 1) ? "yes" : "no", "yes"});
  cs2_table.add_row({"efficiency vs peak",
                     fmt_percent(achieved / cs2.peak_flops_fp32), "68.18%"});
  std::cout << cs2_table << '\n';

  // ---- A100 ----
  const GpuSpec a100 = GpuSpec::a100();
  const GpuAnalyticModel a100_model(a100);
  // Kernel AI on the GPU: 84 flux FLOPs per cell over the calibrated
  // bytes/cell of HBM traffic.
  const f64 a100_ai = 84.0 / a100_model.params().bytes_per_cell_jx;
  const u64 cells = 750ull * 994 * 922;
  const f64 a100_achieved =
      84.0 * static_cast<f64>(cells) * 225.0 / a100_model.alg2_time(cells, 225);

  RooflineModel a100_roofline(a100.name, a100.peak_flops_fp32);
  a100_roofline.add_ceiling({"HBM", a100.mem_bw_bytes});
  a100_roofline.add_point({"FV kernel", a100_ai, a100_achieved});
  std::cout << a100_roofline.ascii_chart() << '\n';

  Table a100_table("A100 kernel placement");
  a100_table.set_header({"quantity", "ours", "paper"});
  a100_table.add_row({"AI", fmt_fixed(a100_ai, 3) + " F/B", "memory-bound region"});
  a100_table.add_row({"achieved", fmt_flops(a100_achieved), "-"});
  a100_table.add_row({"memory-bound?",
                      a100_roofline.compute_bound(a100_ai, 0) ? "no" : "yes", "yes"});
  a100_table.add_row(
      {"fraction of bandwidth ceiling",
       fmt_percent(a100_achieved / a100_roofline.attainable(a100_ai, 0)),
       "78%"});
  std::cout << a100_table << '\n';
  return 0;
}
