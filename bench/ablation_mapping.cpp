// Ablation A5 (future work, Sec. VI) — mapping arbitrary meshes onto the
// 2D fabric.
//
// "Future work includes supporting arbitrary mesh topologies and mapping
// them efficiently onto a dataflow architecture."
//
// For three mesh families (extruded Cartesian, a masked geomodel with
// inactive rock, a radial well grid) and three placement strategies
// (contiguous index blocks, Morton space-filling curve, random), report
// the quantities a device port lives or dies by: load balance, PE-memory
// fit, cut faces (fabric traffic), total wavelet travel, and the largest
// remote-neighbor count (router/color pressure — the structured kernel of
// the paper needs exactly 4 neighbors and 4 colors).

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "umesh/fabric_map.hpp"
#include "umesh/mesh.hpp"

using namespace fvdf;
using namespace fvdf::umesh;

namespace {

void report_mesh(const std::string& name, const UnstructuredMesh& mesh,
                 const MappingOptions& options) {
  Table table(name + " — " + std::to_string(mesh.cell_count()) + " cells, " +
              std::to_string(mesh.faces().size()) + " faces, onto a " +
              std::to_string(options.fabric_width) + "x" +
              std::to_string(options.fabric_height) + " fabric");
  table.set_header({"strategy", "cells/PE (min..max)", "imbalance", "fits 48K",
                    "cut faces", "cut %", "hop weight", "max remote PEs"});
  for (MappingStrategy strategy :
       {MappingStrategy::IndexBlocks, MappingStrategy::MortonSfc,
        MappingStrategy::Random}) {
    const Mapping mapping = map_cells(mesh, strategy, options);
    const MappingReport r = evaluate_mapping(mesh, mapping, options);
    table.add_row({to_string(strategy),
                   std::to_string(r.min_cells_per_pe) + ".." +
                       std::to_string(r.max_cells_per_pe),
                   fmt_fixed(r.load_imbalance, 3), r.fits_memory ? "yes" : "NO",
                   fmt_count(r.cut_faces), fmt_percent(r.cut_fraction),
                   fmt_count(r.total_hop_weight),
                   std::to_string(r.max_remote_neighbors)});
  }
  std::cout << table << '\n';
}

} // namespace

int main() {
  std::cout << "=== bench/ablation_mapping — arbitrary-topology fabric mapping "
               "(paper future work) ===\n\n";

  MappingOptions options;
  options.fabric_width = 8;
  options.fabric_height = 8;

  // 1. Extruded Cartesian: the paper's own case. Morton should rediscover
  //    the column mapping (max 4 remote neighbors).
  {
    const CartesianMesh3D mesh(24, 24, 12);
    const auto field = perm::homogeneous(mesh, 1.0);
    report_mesh("Extruded Cartesian 24x24x12",
                UnstructuredMesh::from_cartesian(mesh, field), options);
  }

  // 2. Masked geomodel: a third of the rock is inactive (carved channels),
  //    so contiguous index blocks lose their geometric meaning.
  {
    const CartesianMesh3D mesh(32, 32, 8);
    Rng rng(5);
    const auto field = perm::lognormal(mesh, rng, 0.0, 1.0);
    CellField<u8> active(mesh, 1);
    Rng mask_rng(17);
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) {
        // Remove elliptic patches of rock.
        const f64 cx = static_cast<f64>(x) - 8, cy = static_cast<f64>(y) - 24;
        const bool hole1 = cx * cx / 36 + cy * cy / 16 < 1.0;
        const f64 dx = static_cast<f64>(x) - 25, dy = static_cast<f64>(y) - 6;
        const bool hole2 = dx * dx / 16 + dy * dy / 25 < 1.0;
        if (hole1 || hole2)
          for (i64 z = 0; z < mesh.nz(); ++z) active.at(x, y, z) = 0;
      }
    const auto masked =
        UnstructuredMesh::from_active_cells(mesh, field, active, nullptr);
    report_mesh("Masked geomodel 32x32x8 (two inactive regions)", masked, options);
  }

  // 3. Radial near-well grid: genuinely non-Cartesian topology (periodic
  //    in theta) with radius-dependent volumes.
  {
    const auto ring = UnstructuredMesh::radial_sector(32, 64, 4, 0.5, 40.0, 2.0, 1.0);
    report_mesh("Radial well grid 32(r) x 64(theta) x 4(z)", ring, options);
  }

  std::cout
      << "Reading: the Morton space-filling curve keeps z-columns and\n"
         "angular neighborhoods together, cutting fabric traffic by an\n"
         "order of magnitude vs random placement and keeping the remote-\n"
         "neighbor fan-in near the cardinal-4 the structured kernel enjoys.\n"
         "On the extruded Cartesian mesh it reproduces the paper's column\n"
         "mapping exactly — evidence the Sec. III-A layout is the special\n"
         "case of an SFC partition, and a concrete basis for the paper's\n"
         "future-work port of arbitrary-topology FV applications.\n";
  return 0;
}
