// Ablation A4 (extension) — Jacobi preconditioning on the dataflow device.
//
// The paper runs plain CG and notes the linear systems are
// "complex, ill-conditioned" (Sec. II-A). Jacobi PCG reuses every device
// mechanism (same halo exchange, same all-reduce count per iteration) and
// adds one element-wise scaling plus one extra column of PE memory — this
// bench quantifies the trade across permeability contrast:
// iterations-to-tolerance, simulated device time, and the PE-memory cost.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/mapping.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"

using namespace fvdf;

int main() {
  std::cout << "=== bench/ablation_precond — plain CG vs Jacobi PCG on the "
               "device ===\n\n";

  Table table("10x10x4 injector/producer problem, tolerance 1e-12 on the\n"
              "global convergence scalar, vs permeability contrast "
              "(log-normal sigma)");
  table.set_header({"log sigma", "CG iters", "PCG iters", "iter ratio",
                    "CG device [ms]", "PCG device [ms]", "time ratio"});

  for (const f64 sigma : {0.5, 1.5, 2.5, 3.5}) {
    const auto problem = FlowProblem::quarter_five_spot(10, 10, 4, /*seed=*/7, sigma);
    core::DataflowConfig plain;
    plain.tolerance = 1e-12f;
    plain.max_iterations = 20'000;
    const auto cg = core::solve_dataflow(problem, plain);

    core::DataflowConfig pcg = plain;
    pcg.jacobi_precondition = true;
    const auto jacobi = core::solve_dataflow(problem, pcg);

    table.add_row({fmt_fixed(sigma, 1), std::to_string(cg.iterations),
                   std::to_string(jacobi.iterations),
                   fmt_fixed(static_cast<f64>(jacobi.iterations) /
                                 static_cast<f64>(cg.iterations),
                             2),
                   fmt_fixed(cg.device_seconds * 1e3, 3),
                   fmt_fixed(jacobi.device_seconds * 1e3, 3),
                   fmt_fixed(jacobi.device_seconds / cg.device_seconds, 2)});
  }
  std::cout << table << '\n';

  // Memory cost of the PCG buffers (minv + z, two columns).
  const u64 capacity = 48 * 1024, reserve = 2048;
  auto max_nz_pcg = [&](bool jacobi) {
    u32 lo = 1, hi = 4096;
    auto fits = [&](u32 nz) {
      try {
        wse::PeMemory probe(capacity, reserve);
        (void)core::PeLayout::plan(probe, nz, core::FluxMode::Fused, 0, jacobi);
        (void)probe.alloc_f32("allreduce.value", 1);
        (void)probe.alloc_f32("allreduce.in", 1);
        return true;
      } catch (const Error&) {
        return false;
      }
    };
    while (lo + 1 < hi) {
      const u32 mid = (lo + hi) / 2;
      (fits(mid) ? lo : hi) = mid;
    }
    return lo;
  };
  Table memory("PE-memory cost of preconditioning (48 KiB PE)");
  memory.set_header({"kernel", "max Nz"});
  memory.add_row({"plain CG (fused)", std::to_string(max_nz_pcg(false))});
  memory.add_row({"Jacobi PCG (fused)", std::to_string(max_nz_pcg(true))});
  std::cout << memory << '\n';
  std::cout << "Reading: on high-contrast fields Jacobi PCG cuts iterations\n"
               "(and device time nearly proportionally — the per-iteration\n"
               "overhead is one fmuls per column) at the cost of two extra\n"
               "columns of PE memory, shrinking the reachable Nz.\n";
  return 0;
}
