// Figure 5 reproduction: pressure propagation from the source (top-left)
// to the producer (bottom-right) after the solve converges.
//
// Runs the CCS injection scenario (injector and producer wells pinned by
// Dirichlet columns in opposite corners, heterogeneous log-normal
// permeability), solves with the host oracle at a 96x96 footprint and
// cross-validates the identical field on the simulated dataflow device at
// a reduced footprint. Artifacts: fig5_pressure.ppm (color raster, like
// the paper's left plot), fig5_source_detail.ppm (zoom on the source, the
// right plot), fig5_pressure.csv, and an ASCII heatmap on stdout.

#include <cmath>
#include <iostream>

#include "common/image.hpp"
#include "common/table.hpp"
#include "core/solver.hpp"
#include "core/validation.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"

using namespace fvdf;

namespace {

ScalarImage top_layer(const CartesianMesh3D& mesh, const std::vector<f64>& pressure) {
  ScalarImage image;
  image.nx = mesh.nx();
  image.ny = mesh.ny();
  image.values.resize(static_cast<std::size_t>(image.nx * image.ny));
  for (i64 y = 0; y < image.ny; ++y)
    for (i64 x = 0; x < image.nx; ++x)
      image.values[static_cast<std::size_t>(y * image.nx + x)] =
          pressure[static_cast<std::size_t>(mesh.index(x, y, 0))];
  return image;
}

ScalarImage crop(const ScalarImage& image, i64 size) {
  ScalarImage out;
  out.nx = size;
  out.ny = size;
  out.values.resize(static_cast<std::size_t>(size * size));
  for (i64 y = 0; y < size; ++y)
    for (i64 x = 0; x < size; ++x)
      out.values[static_cast<std::size_t>(y * size + x)] = image.at(x, y);
  return out;
}

} // namespace

int main() {
  std::cout << "=== bench/fig5_pressure — paper Figure 5 ===\n\n";

  const auto problem = FlowProblem::quarter_five_spot(96, 96, 4, /*seed=*/2024, 1.0);
  CgOptions options;
  options.tolerance = 2e-10; // the paper's epsilon
  options.track_history = true;
  const auto result = solve_pressure_host(problem, options);

  std::cout << "Solve: " << problem.mesh().describe() << '\n'
            << "CG iterations: " << result.cg.iterations
            << (result.cg.converged ? " (converged)" : " (NOT converged)") << '\n'
            << "residual norm (Eq. 3): " << result.final_residual_norm << "\n\n";

  const ScalarImage field = top_layer(problem.mesh(), result.pressure);
  write_ppm(field, "fig5_pressure.ppm");
  write_csv(field, "fig5_pressure.csv");
  write_ppm(crop(field, 24), "fig5_source_detail.ppm");
  std::cout << "artifacts: fig5_pressure.ppm, fig5_source_detail.ppm, "
               "fig5_pressure.csv\n\n";

  std::cout << "Pressure field, top layer (source top-left, producer "
               "bottom-right):\n"
            << ascii_heatmap(field) << '\n';

  // The paper's qualitative claims, checked quantitatively.
  const auto& mesh = problem.mesh();
  auto pressure_at = [&](i64 x, i64 y) {
    return result.pressure[static_cast<std::size_t>(mesh.index(x, y, 0))];
  };
  Table checks("Fig. 5 qualitative checks");
  checks.set_header({"property", "value", "expectation"});
  checks.add_row({"p near source (1,1)", fmt_fixed(pressure_at(1, 1), 4), "~1 (high)"});
  checks.add_row({"p near producer (94,94)", fmt_fixed(pressure_at(94, 94), 4),
                  "~0 (low)"});
  checks.add_row({"p mid-domain (48,48)", fmt_fixed(pressure_at(48, 48), 4),
                  "between the wells"});
  std::cout << checks << '\n';

  // Cross-validate the same scenario on the simulated dataflow device at a
  // footprint the packet-level simulator handles comfortably.
  const auto small = FlowProblem::quarter_five_spot(20, 20, 4, /*seed=*/2024, 1.0);
  core::DataflowConfig df;
  df.tolerance = 1e-14f;
  const auto report = core::validate_against_host(small, df, 1e-24);
  std::cout << "Dataflow cross-check at 20x20x4: " << report.summary() << '\n';
  return report.rel_l2_error < 1e-4 ? 0 : 1;
}
