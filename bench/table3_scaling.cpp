// Table III reproduction: weak scaling of Algorithm 2 (matrix-free Jx) and
// Algorithm 1 (full CG) across fabric sizes, with CS-2 throughput in
// Gcell/s and A100 reference times.
//
// Section 1 regenerates the paper's seven rows from the calibrated
// analytic models and reports the per-row error (the 200x200 and 750x994
// Alg-1 rows are the calibration anchors; everything else is
// out-of-sample).
//
// Section 2 runs a *measured* weak-scaling sweep on the packet-level
// simulator (fabric 4x4 .. 40x40, fixed column depth and iteration count)
// demonstrating the two scaling shapes directly: Alg-2 time is flat in
// fabric size, Alg-1 time grows with the fabric perimeter through the
// all-reduce. `--sim-threads N` runs the event engine on N workers
// (0 = hardware concurrency); results are bitwise identical either way.
// `--verify` runs the static fabric verifier (src/analysis/) before every
// device solve, demonstrating the pre-flight costs well under 5% of a run.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"

using namespace fvdf;

namespace {

u32 g_sim_threads = 1;
bool g_verify = false;

struct PaperRow {
  i64 nx, ny, nz;
  u64 steps;
  f64 alg2_thr_gcells; // CS-2 throughput
  f64 alg2_cs2_s;
  f64 alg2_a100_s;
  f64 alg1_thr_gcells;
  f64 alg1_cs2_s;
  f64 alg1_a100_s;
};

constexpr PaperRow kPaper[] = {
    {200, 200, 922, 226, 680.43, 0.0122, 1.3979, 330.79, 0.0251, 2.8021},
    {400, 400, 922, 225, 2721.57, 0.0122, 2.7743, 982.72, 0.0337, 5.6343},
    {600, 600, 922, 225, 6122.27, 0.0122, 5.2882, 1764.34, 0.0423, 11.8380},
    {750, 600, 922, 225, 7653.38, 0.0122, 7.1703, 2044.08, 0.0456, 16.3473},
    {750, 800, 922, 225, 10204.11, 0.0122, 9.1577, 2487.70, 0.0500, 20.9367},
    {750, 950, 922, 225, 12115.52, 0.0122, 9.2548, 2776.97, 0.0532, 22.9128},
    {750, 994, 922, 225, 12688.55, 0.0122, 9.5507, 2855.48, 0.0542, 23.1879},
};

void model_section() {
  const Cs2AnalyticModel cs2;
  const GpuAnalyticModel a100(GpuSpec::a100());

  Table alg2("Table III (Algorithm 2 — Jx only): model vs paper");
  alg2.set_header({"grid", "cells", "steps", "thr [Gcell/s]", "CS-2 [s]",
                   "paper CS-2 [s]", "A100 [s]", "paper A100 [s]", "A100 err"});
  Table alg1("Table III (Algorithm 1 — full CG): model vs paper");
  alg1.set_header({"grid", "thr [Gcell/s]", "CS-2 [s]", "paper CS-2 [s]",
                   "CS-2 err", "A100 [s]", "paper A100 [s]", "A100 err"});

  for (const auto& row : kPaper) {
    const u64 cells = static_cast<u64>(row.nx) * row.ny * row.nz;
    const std::string grid = std::to_string(row.nx) + "x" + std::to_string(row.ny);

    const f64 t2 = cs2.alg2_time(row.nz, row.steps);
    const f64 t2_a100 = a100.alg2_time(cells, row.steps);
    const f64 thr2 = Cs2AnalyticModel::throughput(cells, row.steps, t2) / 1e9;
    alg2.add_row({grid, fmt_count(cells), std::to_string(row.steps),
                  fmt_fixed(thr2, 2), fmt_fixed(t2, 4), fmt_fixed(row.alg2_cs2_s, 4),
                  fmt_fixed(t2_a100, 4), fmt_fixed(row.alg2_a100_s, 4),
                  fmt_percent(t2_a100 / row.alg2_a100_s - 1.0)});

    const f64 t1 = cs2.alg1_time(row.nx, row.ny, row.nz, row.steps);
    const f64 t1_a100 = a100.alg1_time(cells, row.steps);
    const f64 thr1 = Cs2AnalyticModel::throughput(cells, row.steps, t1) / 1e9;
    alg1.add_row({grid, fmt_fixed(thr1, 2), fmt_fixed(t1, 4),
                  fmt_fixed(row.alg1_cs2_s, 4),
                  fmt_percent(t1 / row.alg1_cs2_s - 1.0), fmt_fixed(t1_a100, 4),
                  fmt_fixed(row.alg1_a100_s, 4),
                  fmt_percent(t1_a100 / row.alg1_a100_s - 1.0)});
  }
  std::cout << alg2 << '\n' << alg1 << '\n';
}

void measured_section() {
  // Weak scaling on the real (simulated) fabric: constant per-PE work.
  const i64 nz = 24;
  const u64 iters = 20;

  Table table("Measured weak scaling on the packet-level simulator (Nz=" +
              std::to_string(nz) + ", " + std::to_string(iters) +
              " iterations): Alg-2 flat, Alg-1 grows with perimeter");
  table.set_header({"fabric", "Alg2 device [ms]", "Alg2 thr [Mcell/s]",
                    "Alg1 device [ms]", "Alg1/Alg2", "allreduce hops (W+H)"});

  // 40x40 = 1,600 PEs: 4x the PE count of the largest fabric the original
  // serial engine swept (20x20), made tractable by the sharded event engine.
  for (const i64 dim : {4, 8, 12, 16, 20, 40}) {
    const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
    const u64 cells = static_cast<u64>(dim) * dim * nz;

    core::DataflowConfig jx;
    jx.jx_only = true;
    jx.max_iterations = iters;
    jx.sim_threads = g_sim_threads;
    jx.verify_preflight = g_verify;
    const auto alg2 = core::solve_dataflow(problem, jx);

    core::DataflowConfig cg;
    cg.tolerance = 0.0f;
    cg.max_iterations = iters;
    cg.sim_threads = g_sim_threads;
    cg.verify_preflight = g_verify;
    const auto alg1 = core::solve_dataflow(problem, cg);

    table.add_row({std::to_string(dim) + "x" + std::to_string(dim),
                   fmt_fixed(alg2.device_seconds * 1e3, 4),
                   fmt_fixed(static_cast<f64>(cells) * iters /
                                 alg2.device_seconds / 1e6,
                             1),
                   fmt_fixed(alg1.device_seconds * 1e3, 4),
                   fmt_fixed(alg1.device_seconds / alg2.device_seconds, 2),
                   std::to_string(2 * dim)});
  }
  std::cout << table << '\n';
  std::cout << "Reading: per-PE Alg-2 time is constant as the fabric grows\n"
               "(near-perfect weak scaling, Table III's first section) while\n"
               "Alg-1 picks up the all-reduce's perimeter-proportional cost\n"
               "(its second section).\n";
}

} // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 0) {
        std::cerr << "--sim-threads expects a count >= 0\n";
        return 2;
      }
      g_sim_threads = static_cast<u32>(n);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      g_verify = true;
    } else {
      std::cerr << "usage: table3_scaling [--sim-threads N] [--verify]\n";
      return 2;
    }
  }
  if (g_verify)
    std::cout << "(static verification pre-flight enabled for all device solves)\n";
  std::cout << "=== bench/table3_scaling — paper Table III ===\n\n";
  model_section();
  measured_section();
  return 0;
}
