// Ablation A6 (extension) — CG vs Chebyshev on the dataflow device.
//
// Table III attributes Algorithm 1's perimeter-proportional device cost to
// the all-reduce ("more values need to be computed by the reduction
// operator, and data also needs to travel longer distances across the
// fabric"). Chebyshev iteration removes the per-iteration reductions
// entirely: its recurrence coefficients are precomputed from spectral
// bounds, and the fabric only reduces at periodic convergence probes.
//
// Measured here: iterations, simulated device time, and global messages
// per iteration for both solvers across fabric sizes — plus the
// paper-scale projection: at 750+994 = 1744 perimeter hops, CG pays the
// all-reduce 2x per iteration while Chebyshev pays it once per
// `check_every` iterations.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"
#include "solver/chebyshev.hpp"

using namespace fvdf;

int main() {
  std::cout << "=== bench/ablation_chebyshev — reduction-free iteration on the "
               "device ===\n\n";

  Table table("CG vs Chebyshev (check_every = 32) on the simulated fabric,\n"
              "Nz=8, tolerance 1e-10, homogeneous injector/producer problem");
  table.set_header({"fabric", "CG iters", "CG device [ms]", "Cheb iters",
                    "Cheb device [ms]", "msgs/iter CG", "msgs/iter Cheb",
                    "time ratio"});

  for (const i64 dim : {6, 8, 10}) {
    const auto problem = FlowProblem::homogeneous_column(dim, dim, 8);
    const auto sys = problem.discretize<f64>();
    const MatrixFreeOperator<f64> op(sys);
    const auto bounds = estimate_spectral_bounds<f64>(
        [&](const f64* in, f64* out) { op.apply(in, out); },
        static_cast<std::size_t>(sys.cell_count()));

    core::DataflowConfig cg_config;
    cg_config.tolerance = 1e-8f; // above the fp32 floor at every size swept
    const auto cg = core::solve_dataflow(problem, cg_config);

    core::ChebyshevDeviceConfig cheb_config;
    cheb_config.bounds = bounds;
    cheb_config.tolerance = 1e-8f;
    cheb_config.check_every = 32;
    cheb_config.max_iterations = 4000;
    const auto cheb = core::solve_dataflow_chebyshev(problem, cheb_config);

    table.add_row(
        {std::to_string(dim) + "x" + std::to_string(dim),
         std::to_string(cg.iterations), fmt_fixed(cg.device_seconds * 1e3, 3),
         std::to_string(cheb.iterations), fmt_fixed(cheb.device_seconds * 1e3, 3),
         fmt_fixed(static_cast<f64>(cg.fabric.messages_sent) /
                       static_cast<f64>(cg.iterations),
                   0),
         fmt_fixed(static_cast<f64>(cheb.fabric.messages_sent) /
                       static_cast<f64>(cheb.iterations),
                   0),
         fmt_fixed(cheb.device_seconds / cg.device_seconds, 2)});
  }
  std::cout << table << '\n';

  // Paper-scale break-even analysis with the analytic model: CG pays the
  // perimeter-proportional all-reduce every iteration; Chebyshev pays it
  // once per check_every. The break-even iteration-inflation ratio rho* is
  // the factor by which Chebyshev may exceed CG's iteration count and
  // still win on device time.
  {
    const Cs2AnalyticModel model;
    const f64 per_iter_compute =
        922.0 * (model.params().cycles_per_cell_jx + model.params().cycles_per_cell_vec) /
        model.spec().clock_hz;
    const f64 per_iter_reduce = model.params().cycles_per_hop_allreduce *
                                (750.0 + 994.0) / model.spec().clock_hz;
    Table projection("Paper-scale break-even (750x994, Nz=922, probe every 32)");
    projection.set_header({"quantity", "value"});
    projection.add_row({"CG per-iteration compute", fmt_seconds(per_iter_compute)});
    projection.add_row({"CG per-iteration all-reduce", fmt_seconds(per_iter_reduce)});
    projection.add_row({"all-reduce share of a CG iteration",
                        fmt_percent(per_iter_reduce / (per_iter_compute + per_iter_reduce))});
    const f64 rho_star = (per_iter_compute + per_iter_reduce) /
                         (per_iter_compute + per_iter_reduce / 32.0);
    projection.add_row({"break-even iteration inflation rho*", fmt_fixed(rho_star, 2) + "x"});
    std::cout << projection << '\n';
    std::cout
        << "Reading: unpreconditioned Chebyshev inflates iterations well past\n"
           "rho* (the measured sweep shows 10-20x at these sizes: CG's\n"
           "finite-termination optimality dominates small spectra), so plain\n"
           "Chebyshev LOSES despite sending ~40% fewer messages per\n"
           "iteration. The reduction-free structure pays off only where the\n"
           "iteration gap closes — with tight bounds on clustered spectra or\n"
           "as a smoother inside a preconditioner — while at the paper's\n"
           "fabric scale the all-reduce is "
        << fmt_percent(per_iter_reduce / (per_iter_compute + per_iter_reduce))
        << " of every CG iteration and rho* = " << fmt_fixed(rho_star, 2)
        << "x is the bar to clear. An honest negative result for the\n"
           "obvious alternative — CG's dot products are worth their fabric\n"
           "traffic here.\n";
  }
  return 0;
}
