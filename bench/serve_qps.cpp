// serve_qps — load generator for the fvdf_serve daemon (docs/serving.md):
// boots an in-process Server on a throwaway unix socket, hammers it from
// N client threads with a mixed cache-hot / cache-cold case stream, and
// reports solves/sec plus p50/p95 end-to-end latency (StreamingHistogram)
// per client count. The cache columns prove the content-addressed
// artifact cache's point: cache-hot setup latency drops by well over the
// 5x acceptance bar because repeat cases skip geomodel construction,
// lowering and verification entirely.
//
//   ./bench/serve_qps [--quick] [--json BENCH_serve_qps.json]
//
// JSON follows the BENCH_sim_throughput.json conventions: a top-level
// "hardware_threads" gate for timing comparisons, a "seed_baseline" row
// (the daemon-less single-shot path: parse + build + solve per request,
// i.e. what fvdf_sim does), and one "runs" row per client count.

#include <chrono>
#include <cstring>
#include <unistd.h>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/scenario.hpp"
#include "common/stats.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/json.hpp"

namespace {

using namespace fvdf;

f64 now_seconds() {
  return std::chrono::duration<f64>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One dataflow case per seed; seed also decides hot/cold mixing. The
// heavily-smoothed lognormal geomodel makes the cold setup cost (problem
// build) realistic relative to the solve, which is what the cache-hot
// setup_speedup column measures.
std::string case_text(u64 seed) {
  std::ostringstream out;
  out << "[mesh]\nnx = 16\nny = 16\nnz = 4\n\n"
      << "[perm]\nkind = lognormal\nsigma = 1.0\nsmoothing = 24\nseed = "
      << seed << "\n\n"
      << "[solver]\nbackend = dataflow\ntolerance = 1e-8\nverify = true\n";
  return out.str();
}

struct WorkerTally {
  u64 solves = 0;
  StreamingHistogram latency;       // end-to-end seconds per request
  StreamingHistogram setup_hot;     // setup_seconds on cache hits
  StreamingHistogram setup_cold;    // setup_seconds on cache misses
  bool all_converged = true;
  std::string first_hash;           // per hot-case result hash (identity check)
  bool hashes_identical = true;
};

WorkerTally run_client(const std::string& socket_path, u32 worker_index,
                       u64 requests, u64 cold_cases) {
  WorkerTally tally;
  serve::Client client;
  client.connect(socket_path);
  for (u64 i = 0; i < requests; ++i) {
    // Every odd request re-submits the shared hot case; even requests
    // walk a per-worker cold seed range (distinct fingerprints).
    const bool hot = (i % 2) == 1;
    const u64 seed =
        hot ? 1 : 1000 + worker_index * cold_cases + (i / 2) % cold_cases;
    serve::Client::SolveRequest request;
    request.id = "w" + std::to_string(worker_index) + "-" + std::to_string(i);
    request.case_text = case_text(seed);
    const f64 start = now_seconds();
    client.solve(request);
    const serve::JsonValue result = client.wait_result(request.id);
    const f64 elapsed = now_seconds() - start;

    tally.latency.add(elapsed);
    ++tally.solves;
    if (result.get_string("event", "") != "result") {
      tally.all_converged = false;
      continue;
    }
    tally.all_converged &= result.get_bool("converged", false);
    const f64 setup = result.get_f64("setup_seconds", 0);
    const bool was_hit = result.get_string("cache", "") == "hit";
    (was_hit ? tally.setup_hot : tally.setup_cold).add(setup);
    if (hot) {
      const std::string hash = result.get_string("pressure_hash", "");
      if (tally.first_hash.empty()) tally.first_hash = hash;
      else tally.hashes_identical &= (hash == tally.first_hash);
    }
  }
  client.close();
  return tally;
}

struct RunRow {
  u32 clients = 0;
  u64 solves = 0;
  f64 wall_seconds = 0;
  f64 solves_per_sec = 0;
  f64 latency_p50 = 0, latency_p95 = 0;
  f64 setup_cold_mean = 0, setup_hot_mean = 0;
  f64 setup_speedup = 0; // cold mean / hot mean
  u64 cache_hits = 0, cache_misses = 0;
  bool hashes_identical = true;
  bool all_converged = true;
};

RunRow run_load(u32 clients, u64 requests_per_client, u64 cold_cases) {
  const std::string socket_path =
      "/tmp/fvdf_serve_qps_" + std::to_string(::getpid()) + ".sock";
  serve::ServerConfig config;
  config.socket_path = socket_path;
  config.http_port = -1;
  config.jobs.workers = 2;
  config.jobs.queue_capacity = 256;
  config.cache_capacity = 64;
  serve::Server server(std::move(config));
  server.start();

  std::vector<WorkerTally> tallies(clients);
  std::vector<std::thread> threads;
  const f64 start = now_seconds();
  for (u32 w = 0; w < clients; ++w)
    threads.emplace_back([&, w] {
      tallies[w] = run_client(socket_path, w, requests_per_client, cold_cases);
    });
  for (auto& thread : threads) thread.join();
  const f64 wall = now_seconds() - start;

  RunRow row;
  row.clients = clients;
  row.wall_seconds = wall;
  StreamingHistogram latency, setup_hot, setup_cold;
  std::string hot_hash;
  for (const WorkerTally& tally : tallies) {
    row.solves += tally.solves;
    latency.merge(tally.latency);
    setup_hot.merge(tally.setup_hot);
    setup_cold.merge(tally.setup_cold);
    row.all_converged &= tally.all_converged;
    row.hashes_identical &= tally.hashes_identical;
    if (!tally.first_hash.empty()) {
      if (hot_hash.empty()) hot_hash = tally.first_hash;
      else row.hashes_identical &= (tally.first_hash == hot_hash);
    }
  }
  row.solves_per_sec = wall > 0 ? static_cast<f64>(row.solves) / wall : 0;
  row.latency_p50 = latency.p50();
  row.latency_p95 = latency.p95();
  row.setup_hot_mean = setup_hot.mean();
  row.setup_cold_mean = setup_cold.mean();
  row.setup_speedup = row.setup_hot_mean > 0
                          ? row.setup_cold_mean / row.setup_hot_mean
                          : 0;
  const serve::CacheStats cache = server.cache().stats();
  row.cache_hits = cache.hits;
  row.cache_misses = cache.misses;

  server.request_shutdown();
  server.wait();
  return row;
}

// The daemon-less baseline: what a cold single-shot driver pays per
// request (config parse + problem build + solve, no artifact reuse).
f64 single_shot_seconds(u64 reps) {
  const std::string text = case_text(1);
  f64 total = 0;
  for (u64 i = 0; i < reps; ++i) {
    const f64 start = now_seconds();
    const Config config = Config::parse_string(text);
    app::Scenario scenario = app::scenario_from_config(config);
    std::ostringstream log;
    const app::ScenarioOutcome outcome = app::run_scenario(scenario, log);
    total += now_seconds() - start;
    if (!outcome.converged) std::cerr << "warning: baseline did not converge\n";
  }
  return total / static_cast<f64>(reps);
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_serve_qps.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else {
      std::cerr << "usage: serve_qps [--quick] [--json PATH]\n";
      return 2;
    }
  }

  const u64 requests = quick ? 6 : 20;
  const u64 cold_cases = quick ? 2 : 5;
  const std::vector<u32> client_counts = quick ? std::vector<u32>{1, 2}
                                              : std::vector<u32>{1, 2, 4};

  std::cout << "serve_qps: single-shot baseline..." << std::endl;
  const f64 baseline = single_shot_seconds(quick ? 2 : 5);
  std::cout << "  " << baseline << " s/request (parse+build+solve, no cache)\n";

  std::vector<RunRow> rows;
  for (const u32 clients : client_counts) {
    std::cout << "serve_qps: " << clients << " client(s) x " << requests
              << " requests..." << std::endl;
    rows.push_back(run_load(clients, requests, cold_cases));
    const RunRow& row = rows.back();
    std::cout << "  " << row.solves_per_sec << " solves/s, p50 "
              << row.latency_p50 << " s, p95 " << row.latency_p95
              << " s, setup cold/hot " << row.setup_cold_mean << "/"
              << row.setup_hot_mean << " s (" << row.setup_speedup
              << "x), hits/misses " << row.cache_hits << "/"
              << row.cache_misses
              << (row.hashes_identical ? "" : "  HASH MISMATCH") << std::endl;
  }

  telemetry::JsonWriter writer;
  writer.begin_object()
      .kv("bench", "serve_qps")
      .kv("workload",
          "16x16x4 smoothed-lognormal device CG + verify, 50% cache-hot / "
          "50% cold seeds")
      .kv("hardware_threads",
          static_cast<u64>(std::thread::hardware_concurrency()))
      .key("seed_baseline")
      .begin_object()
      .kv("note", "daemon-less single-shot path: parse + build + solve per "
                  "request, no artifact reuse")
      .kv("seconds_per_request", baseline)
      .end_object()
      .key("runs")
      .begin_array();
  bool all_identical = true;
  for (const RunRow& row : rows) {
    all_identical &= row.hashes_identical;
    writer.begin_object()
        .kv("clients", row.clients)
        .kv("solves", row.solves)
        .kv("wall_seconds", row.wall_seconds)
        .kv("solves_per_sec", row.solves_per_sec)
        .kv("latency_p50", row.latency_p50)
        .kv("latency_p95", row.latency_p95)
        .kv("setup_cold_mean", row.setup_cold_mean)
        .kv("setup_hot_mean", row.setup_hot_mean)
        .kv("setup_speedup_hot_vs_cold", row.setup_speedup)
        .kv("cache_hits", row.cache_hits)
        .kv("cache_misses", row.cache_misses)
        .kv("all_converged", row.all_converged)
        .kv("hot_results_bitwise_identical", row.hashes_identical)
        .end_object();
  }
  writer.end_array()
      .kv("all_hot_results_bitwise_identical", all_identical)
      .end_object();

  std::ofstream out(json_path, std::ios::trunc);
  out << writer.take() << '\n';
  std::cout << "serve_qps: wrote " << json_path << std::endl;
  return all_identical ? 0 : 1;
}
