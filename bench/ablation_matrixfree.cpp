// Ablation A3 — matrix-free vs assembled (Sec. II-A motivation).
//
// "The main advantages of the matrix-free approach are 1) to reduce the
// memory requirements by removing the need to store the full Jacobian
// matrix, and 2) to speedup the computations by removing the need to fill
// the global sparse Jacobian matrix."
//
// Measured on the host across mesh sizes: CSR storage vs problem data,
// assembly wall time, and per-apply wall time for both operators.

#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "fv/assembled.hpp"
#include "fv/operator.hpp"
#include "fv/problem.hpp"
#include "gpu/kernels.hpp"
#include "perf/analytic.hpp"

using namespace fvdf;

namespace {

f64 seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - start).count();
}

template <typename Fn> f64 time_best_of(int reps, Fn&& fn) {
  f64 best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

} // namespace

int main() {
  std::cout << "=== bench/ablation_matrixfree — matrix-free vs assembled CSR ===\n\n";

  Table table("Host comparison (f32, one Jx application, best of 5)");
  table.set_header({"mesh", "cells", "problem data", "CSR bytes", "CSR/data",
                    "assembly [ms]", "CSR apply [ms]", "matrix-free apply [ms]"});

  for (const i64 dim : {16, 24, 32, 48}) {
    const auto problem = FlowProblem::quarter_five_spot(dim, dim, dim, 7);
    const auto sys = problem.discretize<f32>();
    const auto n = static_cast<std::size_t>(sys.cell_count());

    const MatrixFreeOperator<f32> mf(sys);

    const auto t_assembly_start = std::chrono::steady_clock::now();
    const AssembledOperator<f32> csr(sys);
    const f64 t_assembly = seconds_since(t_assembly_start);

    Rng rng(1);
    std::vector<f32> x(n), y(n);
    for (auto& v : x) v = static_cast<f32>(rng.uniform(-1, 1));

    const f64 t_csr = time_best_of(5, [&] { csr.apply(x.data(), y.data()); });
    const f64 t_mf = time_best_of(5, [&] { mf.apply(x.data(), y.data()); });

    table.add_row({std::to_string(dim) + "^3", fmt_count(static_cast<u64>(n)),
                   fmt_bytes(static_cast<f64>(sys.data_bytes())),
                   fmt_bytes(static_cast<f64>(csr.matrix_bytes())),
                   fmt_fixed(static_cast<f64>(csr.matrix_bytes()) /
                                 static_cast<f64>(sys.data_bytes()),
                             2) +
                       "x",
                   fmt_fixed(t_assembly * 1e3, 3), fmt_fixed(t_csr * 1e3, 3),
                   fmt_fixed(t_mf * 1e3, 3)});
  }
  std::cout << table << '\n';

  // GPU-model comparison: memory-bound devices pay for every byte, so the
  // traffic ratio *is* the per-apply time ratio.
  {
    const GpuAnalyticModel model(GpuSpec::a100());
    Table gpu_table("GPU (A100 traffic model): matrix-free vs CSR per apply");
    gpu_table.set_header({"mesh", "MF bytes/cell", "CSR bytes/cell",
                          "CSR/MF traffic", "assembly amortization (applies)"});
    for (const i64 dim : {16, 32}) {
      const auto problem = FlowProblem::quarter_five_spot(dim, dim, dim, 7);
      const auto sys = problem.discretize<f32>();
      gpu::CudaDevice device(GpuSpec::a100(), 1);
      const auto dev_sys = gpu::DeviceSystem::upload(device, sys);
      const gpu::DeviceCsr csr = gpu::assemble_csr(device, sys);
      const f64 cells = static_cast<f64>(sys.cell_count());
      const f64 mf = static_cast<f64>(gpu::nominal_jx_traffic(dev_sys)) / cells;
      const f64 sp = static_cast<f64>(gpu::nominal_spmv_traffic(csr)) / cells;
      const f64 fill = static_cast<f64>(csr.bytes() + sys.data_bytes()) / cells;
      gpu_table.add_row({std::to_string(dim) + "^3", fmt_fixed(mf, 1),
                         fmt_fixed(sp, 1), fmt_fixed(sp / mf, 2) + "x",
                         // applies until the fill pass is paid back by the
                         // (non-existent) per-apply advantage: effectively
                         // never, since CSR also costs more per apply.
                         fmt_fixed(fill / std::max(sp - mf, 1e-9), 1)});
    }
    std::cout << gpu_table << '\n';
  }

  std::cout
      << "Reading: the assembled Jacobian costs several times the problem\n"
         "data in storage plus a fill pass per Newton step — the memory/fill\n"
         "overheads the matrix-free formulation removes. On a 48 KiB-per-PE\n"
         "dataflow device the CSR variant would not fit at all, which is why\n"
         "the paper's device implementation is matrix-free by construction.\n";
  return 0;
}
