// Table IV reproduction: time distribution between data movement and
// computation on the dataflow device.
//
// The paper modified its kernel to "exclude all floating-point
// operations" and re-ran the largest mesh for the same 225 steps. The
// simulator reproduces that experiment literally with
// TimingParams::compute_scale = 0 (DSD ops execute functionally but cost
// zero cycles): what remains is data movement. We measure the split at
// several column depths on the packet-level simulator and print the
// paper's 750x994x922 row next to the analytic-model estimate.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"

using namespace fvdf;

namespace {

struct Split {
  f64 total;
  f64 comm;
};

Split measure(i64 dim, i64 nz, u64 iters) {
  const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
  core::DataflowConfig full;
  full.tolerance = 0.0f;
  full.max_iterations = iters;
  const auto total = core::solve_dataflow(problem, full);

  core::DataflowConfig comm = full;
  comm.timing.compute_scale = 0.0;
  const auto comm_only = core::solve_dataflow(problem, comm);
  return {total.device_seconds, comm_only.device_seconds};
}

} // namespace

int main() {
  std::cout << "=== bench/table4_comm — paper Table IV ===\n\n";

  // Paper values at 750x994x922, 225 steps.
  Table paper("Paper Table IV (750x994x922, 225 steps)");
  paper.set_header({"component", "time [s]", "share"});
  paper.add_row({"Data movement", "0.0034", "6.27%"});
  paper.add_row({"Computation", "0.0508 - 0.0542", "93.73 - 100%"});
  paper.add_row({"Total", "0.0542", "100%"});
  std::cout << paper << '\n';

  // Analytic-model estimate at paper scale: the model's allreduce +
  // fabric terms vs its compute terms.
  {
    const Cs2AnalyticModel model;
    const f64 total = model.alg1_time(750, 994, 922, 225);
    const f64 comm = model.comm_time(750, 994, 225);
    Table table("Analytic model at paper scale (comm = pure wavelet transit,\n"
                "calibrated to the paper's FLOP-free run; halo transfers overlap\n"
                "with the z-flux and are hidden)");
    table.set_header({"component", "time [s]", "share"});
    table.add_row({"Data movement", fmt_fixed(comm, 4), fmt_percent(comm / total)});
    table.add_row({"Computation", fmt_fixed(total - comm, 4),
                   fmt_percent((total - comm) / total)});
    table.add_row({"Total", fmt_fixed(total, 4), "100.00%"});
    std::cout << table << '\n';
  }

  // Measured on the packet-level simulator across column depths: deeper
  // columns amortize communication, pushing the split toward the paper's.
  Table measured("Measured on the simulator (12x12 fabric, 20 CG iterations):\n"
                 "communication share shrinks as columns deepen");
  measured.set_header({"Nz", "total [ms]", "comm-only [ms]", "comm share",
                       "compute share"});
  for (const i64 nz : {4, 16, 64, 128}) {
    const Split split = measure(12, nz, 20);
    measured.add_row({std::to_string(nz), fmt_fixed(split.total * 1e3, 4),
                      fmt_fixed(split.comm * 1e3, 4),
                      fmt_percent(split.comm / split.total),
                      fmt_percent(1.0 - split.comm / split.total)});
  }
  std::cout << measured << '\n';
  std::cout << "Reading: the paper's 6.27% figure is the Nz=922 extreme of this\n"
               "trend — at the reduced depths the simulator can hold, the share\n"
               "is larger but decreases monotonically with Nz, matching the\n"
               "design argument of Sec. III-A (whole Z column per PE).\n";
  return 0;
}
