// Table IV reproduction: time distribution between data movement and
// computation on the dataflow device.
//
// The paper modified its kernel to "exclude all floating-point
// operations" and re-ran the largest mesh for the same 225 steps. The
// simulator reproduces that experiment literally with
// TimingParams::compute_scale = 0 (DSD ops execute functionally but cost
// zero cycles): what remains is data movement. We measure the split at
// several column depths on the packet-level simulator and print the
// paper's 750x994x922 row next to the analytic-model estimate.

#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "perf/analytic.hpp"
#include "telemetry/session.hpp"

using namespace fvdf;

namespace {

struct Split {
  f64 total;
  f64 comm;
  u64 link_words; // cardinal-link word hops, from the per-link counters
};

// Sums the telemetry per-PE, per-link transmit counters over the fabric —
// the communication volume as the new observability layer sees it.
u64 link_word_total(const telemetry::Session& session) {
  u64 words = 0;
  for (const telemetry::PeActivity& pe : session.collector().activities())
    words += pe.fabric_tx_words();
  return words;
}

Split measure(i64 dim, i64 nz, u64 iters) {
  const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
  core::DataflowConfig full;
  full.tolerance = 0.0f;
  full.max_iterations = iters;
  telemetry::Session full_session({telemetry::Level::Metrics});
  full.telemetry = &full_session;
  const auto total = core::solve_dataflow(problem, full);

  core::DataflowConfig comm = full;
  comm.timing.compute_scale = 0.0;
  telemetry::Session comm_session({telemetry::Level::Metrics});
  comm.telemetry = &comm_session;
  const auto comm_only = core::solve_dataflow(problem, comm);

  // Cross-check the new per-link counters against the engine's own
  // accounting, and against the FLOP-free re-run: zeroing compute_scale
  // changes timing only, so all three communication-volume figures must
  // agree exactly or the Table IV split is measuring the wrong thing.
  const u64 full_words = link_word_total(full_session);
  const u64 comm_words = link_word_total(comm_session);
  FVDF_CHECK_MSG(full_words == total.fabric.word_hops,
                 "per-link counters disagree with FabricStats.word_hops: "
                     << full_words << " vs " << total.fabric.word_hops);
  FVDF_CHECK_MSG(comm_words == full_words,
                 "FLOP-free run moved a different word volume: "
                     << comm_words << " vs " << full_words);
  return {total.device_seconds, comm_only.device_seconds, full_words};
}

} // namespace

int main() {
  std::cout << "=== bench/table4_comm — paper Table IV ===\n\n";

  // Paper values at 750x994x922, 225 steps.
  Table paper("Paper Table IV (750x994x922, 225 steps)");
  paper.set_header({"component", "time [s]", "share"});
  paper.add_row({"Data movement", "0.0034", "6.27%"});
  paper.add_row({"Computation", "0.0508 - 0.0542", "93.73 - 100%"});
  paper.add_row({"Total", "0.0542", "100%"});
  std::cout << paper << '\n';

  // Analytic-model estimate at paper scale: the model's allreduce +
  // fabric terms vs its compute terms.
  {
    const Cs2AnalyticModel model;
    const f64 total = model.alg1_time(750, 994, 922, 225);
    const f64 comm = model.comm_time(750, 994, 225);
    Table table("Analytic model at paper scale (comm = pure wavelet transit,\n"
                "calibrated to the paper's FLOP-free run; halo transfers overlap\n"
                "with the z-flux and are hidden)");
    table.set_header({"component", "time [s]", "share"});
    table.add_row({"Data movement", fmt_fixed(comm, 4), fmt_percent(comm / total)});
    table.add_row({"Computation", fmt_fixed(total - comm, 4),
                   fmt_percent((total - comm) / total)});
    table.add_row({"Total", fmt_fixed(total, 4), "100.00%"});
    std::cout << table << '\n';
  }

  // Measured on the packet-level simulator across column depths: deeper
  // columns amortize communication, pushing the split toward the paper's.
  Table measured("Measured on the simulator (12x12 fabric, 20 CG iterations):\n"
                 "communication share shrinks as columns deepen. Link words\n"
                 "come from the telemetry per-link counters, cross-checked\n"
                 "against the engine's word-hop accounting and the FLOP-free\n"
                 "re-run on every row.");
  measured.set_header({"Nz", "total [ms]", "comm-only [ms]", "comm share",
                       "compute share", "link words"});
  for (const i64 nz : {4, 16, 64, 128}) {
    const Split split = measure(12, nz, 20);
    measured.add_row({std::to_string(nz), fmt_fixed(split.total * 1e3, 4),
                      fmt_fixed(split.comm * 1e3, 4),
                      fmt_percent(split.comm / split.total),
                      fmt_percent(1.0 - split.comm / split.total),
                      std::to_string(split.link_words)});
  }
  std::cout << measured << '\n';
  std::cout << "Reading: the paper's 6.27% figure is the Nz=922 extreme of this\n"
               "trend — at the reduced depths the simulator can hold, the share\n"
               "is larger but decreases monotonically with Nz, matching the\n"
               "design argument of Sec. III-A (whole Z column per PE).\n";
  return 0;
}
