// Ablation A1 — PE private-memory saving strategies (Sec. III-E1).
//
// "Each PE has only 48 KiB memory space, making the reuse of data buffers
// important ... larger simulations can be tackled by minimizing the
// implementation's memory footprint."
//
// We quantify that: for each memory layout (naive port, on-the-fly
// mobility, fused/optimized) print bytes per cell and the maximum column
// depth Nz that fits a 48 KiB PE, then demonstrate at runtime that a depth
// reachable by the optimized layout actually solves while the same depth
// overflows the on-the-fly layout's arena.

#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/mapping.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"

using namespace fvdf;
using namespace fvdf::core;

int main() {
  std::cout << "=== bench/ablation_memory — Sec. III-E1 memory optimizations ===\n\n";

  const u64 capacity = 48 * 1024;
  const u64 reserve = 2048; // program text + stack model

  Table table("Maximum column depth per layout (48 KiB PE, " +
              fmt_bytes(static_cast<f64>(reserve)) + " reserved). Paper reached "
              "Nz=922 with its optimized layout.");
  table.set_header({"layout", "bytes/cell", "max Nz", "vs naive"});
  const LayoutKind kinds[] = {LayoutKind::Naive, LayoutKind::OnTheFly,
                              LayoutKind::Optimized};
  const u32 naive_max = max_nz(LayoutKind::Naive, capacity, reserve);
  for (LayoutKind kind : kinds) {
    const auto fit100 = check_fit(kind, 100, 1 << 20, 0);
    const auto fit200 = check_fit(kind, 200, 1 << 20, 0);
    const u64 per_cell = (fit200.bytes_needed - fit100.bytes_needed) / 100;
    const u32 limit = max_nz(kind, capacity, reserve);
    table.add_row({to_string(kind), std::to_string(per_cell),
                   std::to_string(limit),
                   fmt_fixed(static_cast<f64>(limit) / naive_max, 2) + "x"});
  }
  std::cout << table << '\n';

  // Runtime demonstration at a depth between the two limits.
  const u32 otf_max = max_nz(LayoutKind::OnTheFly, capacity, reserve);
  const u32 opt_max = max_nz(LayoutKind::Optimized, capacity, reserve);
  const i64 nz = (otf_max + opt_max) / 2;
  std::cout << "Runtime check at Nz=" << nz << " (fits optimized <= " << opt_max
            << ", overflows on-the-fly <= " << otf_max << "):\n";

  const auto problem = FlowProblem::homogeneous_column(2, 2, nz);
  DataflowConfig fused;
  fused.flux_mode = FluxMode::Fused;
  fused.jx_only = true;
  fused.max_iterations = 2;
  const auto ok = solve_dataflow(problem, fused);
  std::cout << "  fused layout:      ran " << ok.iterations << " iterations in "
            << ok.device_seconds << " s (simulated) — OK\n";

  DataflowConfig otf = fused;
  otf.flux_mode = FluxMode::OnTheFly;
  try {
    (void)solve_dataflow(problem, otf);
    std::cout << "  on-the-fly layout: unexpectedly fit!\n";
    return 1;
  } catch (const Error& e) {
    const std::string what = e.what();
    std::cout << "  on-the-fly layout: PE memory overflow, as expected\n    ("
              << what.substr(0, what.find('\n')) << ")\n";
  }

  // Capacity sweep: what a hypothetical bigger PE would buy.
  Table sweep("\nMax Nz vs PE memory capacity (optimized layout)");
  sweep.set_header({"PE memory", "max Nz"});
  for (u64 kib : {24, 48, 96, 192}) {
    sweep.add_row({std::to_string(kib) + " KiB",
                   std::to_string(max_nz(LayoutKind::Optimized, kib * 1024, reserve))});
  }
  std::cout << sweep;
  return 0;
}
