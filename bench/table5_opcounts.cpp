// Table V reproduction: per-cell instruction counts, memory traffic and
// fabric traffic of one CG iteration on the dataflow device — *measured*
// from the simulator's DSD instruction ledger, not hand-derived.
//
// Method: run the device solver for k and k+1 fixed iterations on the same
// problem and difference an interior PE's OpCounters; dividing by the
// column depth gives exact per-cell per-iteration counts. Both flux-kernel
// variants are reported: the on-the-fly-mobility kernel (closest to the
// paper's, which stores six transmissibilities and averages mobilities
// every iteration) and the fused kernel (the memory-optimal variant of the
// Sec. III-E1 optimizations). The paper's Table V counts are printed for
// comparison; differences are discussed in EXPERIMENTS.md.

#include <iostream>

#include "common/table.hpp"
#include "core/pe_program.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "wse/fabric.hpp"

using namespace fvdf;

namespace {

// Paper Table V, per cell per iteration.
struct PaperOps {
  u64 fmul = 36 + 2;
  u64 fsub = 24;
  u64 fneg = 6;
  u64 fadd = 6;
  u64 fma = 6 + 5;
  u64 fmov = 4 + 4;
  u64 flops = 96;
};

OpCounters per_iteration_counters(core::FluxMode mode, u64 base_iters, i64 dim,
                                  i64 nz) {
  auto run = [&](u64 iters) {
    const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
    const auto sys = problem.discretize<f32>();
    wse::Fabric fabric(dim, dim);
    fabric.load([&](wse::PeCoord coord) {
      core::CgPeConfig config;
      config.nz = static_cast<u32>(nz);
      config.mode = mode;
      config.max_iterations = iters;
      config.tolerance = 0.0f;
      config.init = core::build_pe_init(problem, sys, coord.x, coord.y, mode);
      return std::make_unique<core::CgPeProgram>(std::move(config));
    });
    const auto result = fabric.run();
    FVDF_CHECK(result.all_halted);
    // Interior PE: full 4-neighbor instruction stream (edge PEs skip faces).
    return fabric.pe_counters(dim / 2, dim / 2);
  };
  return run(base_iters + 1) - run(base_iters);
}

void report(core::FluxMode mode, i64 nz) {
  const OpCounters per_iter = per_iteration_counters(mode, 4, 6, nz);
  const f64 cells = static_cast<f64>(nz);
  const PaperOps paper;

  Table table(std::string("Per-cell per-iteration counts — ") +
              core::to_string(mode) + " flux kernel (interior PE, Nz=" +
              std::to_string(nz) + ") vs paper Table V");
  table.set_header({"opcode", "ours / cell", "paper / cell"});
  auto row = [&](Opcode op, u64 paper_count) {
    table.add_row({to_string(op),
                   fmt_fixed(static_cast<f64>(per_iter.count(op)) / cells, 2),
                   std::to_string(paper_count)});
  };
  row(Opcode::FMUL, paper.fmul);
  row(Opcode::FSUB, paper.fsub);
  row(Opcode::FNEG, paper.fneg);
  row(Opcode::FADD, paper.fadd);
  row(Opcode::FMA, paper.fma);
  row(Opcode::FMOV, paper.fmov);
  std::cout << table;

  Table traffic("Traffic per cell per iteration");
  traffic.set_header({"quantity", "ours", "paper"});
  traffic.add_row({"FLOPs", fmt_fixed(static_cast<f64>(per_iter.total_flops()) / cells, 2),
                   std::to_string(paper.flops)});
  traffic.add_row({"memory loads",
                   fmt_fixed(static_cast<f64>(per_iter.memory_loads()) / cells, 2),
                   "~201 (268 incl. stores)"});
  traffic.add_row({"memory stores",
                   fmt_fixed(static_cast<f64>(per_iter.memory_stores()) / cells, 2),
                   "~67"});
  traffic.add_row({"fabric loads (words)",
                   fmt_fixed(static_cast<f64>(per_iter.fabric_loads()) / cells, 2),
                   "8"});
  traffic.add_row({"fabric stores (words)",
                   fmt_fixed(static_cast<f64>(per_iter.fabric_stores()) / cells, 2),
                   "- (not separated)"});
  const f64 ai_mem = static_cast<f64>(per_iter.total_flops()) /
                     static_cast<f64>(per_iter.memory_bytes());
  const f64 ai_fabric = static_cast<f64>(per_iter.total_flops()) /
                        static_cast<f64>(per_iter.fabric_bytes());
  traffic.add_row({"AI vs memory [F/B]", fmt_fixed(ai_mem, 4), "0.0895"});
  traffic.add_row({"AI vs fabric [F/B]", fmt_fixed(ai_fabric, 2), "3"});
  std::cout << traffic << '\n';
}

} // namespace

int main() {
  std::cout << "=== bench/table5_opcounts — paper Table V ===\n\n";
  report(core::FluxMode::OnTheFly, 32);
  report(core::FluxMode::Fused, 32);
  std::cout
      << "Reading: the categories and their proportions line up with Table V\n"
         "(FMA-heavy flux + 5 FMAs of CG updates, 4 halo FMOVs per cell);\n"
         "absolute counts are lower because our kernels fuse the mobility\n"
         "average into fewer vector instructions than the paper's compiled\n"
         "CSL, which also carries gravity/orientation terms (hence its extra\n"
         "FMUL/FSUB/FNEG per neighbor). See EXPERIMENTS.md.\n";
  return 0;
}
