// Ablation A2 — asynchronous communications (Sec. III-E2).
//
// "non-blocking communications enable the overlapping of transfers with
// useful computations, effectively hiding associated overheads."
//
// The device kernel starts the halo exchange and computes the z-dimension
// fluxes while the fabric moves data; each lateral face's flux fires the
// moment its halo lands. We quantify what that buys: for each
// configuration measure
//   t_full     — the real event-driven run (overlapped),
//   t_compute  — the same run with free communication (hop latency 0,
//                infinite link rate): pure compute time,
//   t_comm     — the run with compute_scale = 0: pure communication time.
// A perfectly serialized implementation would take ~ t_compute + t_comm;
// the overlap benefit is (t_compute + t_comm - t_full) / t_full.

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"

using namespace fvdf;

namespace {

struct Times {
  f64 full, compute, comm;
};

Times measure(i64 dim, i64 nz, u64 iters) {
  const auto problem = FlowProblem::homogeneous_column(dim, dim, nz);
  auto run = [&](core::DataflowConfig config) {
    config.jx_only = true;
    config.max_iterations = iters;
    return core::solve_dataflow(problem, config).device_seconds;
  };

  core::DataflowConfig full;
  const f64 t_full = run(full);

  core::DataflowConfig free_comm;
  free_comm.timing.hop_latency_cycles = 0.0;
  free_comm.timing.words_per_cycle_link = 1e9;
  free_comm.timing.send_setup_cycles = 0.0;
  const f64 t_compute = run(free_comm);

  core::DataflowConfig no_compute;
  no_compute.timing.compute_scale = 0.0;
  const f64 t_comm = run(no_compute);

  return {t_full, t_compute, t_comm};
}

} // namespace

int main() {
  std::cout << "=== bench/ablation_overlap — Sec. III-E2 comm/compute overlap ===\n\n";

  Table table("Overlap effectiveness (12x12 fabric, 10 Jx iterations)");
  table.set_header({"Nz", "t_full [ms]", "t_compute [ms]", "t_comm [ms]",
                    "serialized est. [ms]", "hidden", "overlap benefit"});
  for (const i64 nz : {8, 32, 96, 192}) {
    const Times t = measure(12, nz, 10);
    const f64 serialized = t.compute + t.comm;
    table.add_row({std::to_string(nz), fmt_fixed(t.full * 1e3, 4),
                   fmt_fixed(t.compute * 1e3, 4), fmt_fixed(t.comm * 1e3, 4),
                   fmt_fixed(serialized * 1e3, 4),
                   fmt_percent((serialized - t.full) / t.comm),
                   fmt_percent(serialized / t.full - 1.0)});
  }
  std::cout << table << '\n';
  std::cout
      << "Reading: t_full < t_compute + t_comm because the z-flux runs while\n"
         "halos are in flight and each face's flux fires on arrival\n"
         "(Sec. III-B's event-driven design). With deep columns the compute\n"
         "term dominates and communication hides almost entirely — the\n"
         "regime the paper's Table IV reports (6.27% visible comm).\n";
  return 0;
}
