// Event-engine throughput: how fast does the fabric simulator itself run?
//
// Fixed workload — a 64x64x8 device CG solve (4,096 PEs), tolerance 0,
// 10 iterations — executed at several worker-thread counts. For each run
// the bench reports host wall-clock, processed simulator events and
// events/second, checks that every thread count reproduces the
// single-thread solution bitwise, and writes the table to
// BENCH_sim_throughput.json (in the working directory, or --out PATH).
//
// `seed_baseline` in the JSON is the same workload measured on the
// pre-refactor serial engine (std::priority_queue, per-send payload
// allocation, word-at-a-time ramp delivery) on the same host, so the file
// records both the single-thread speedup of the engine overhaul and the
// multi-thread scaling of the sharded executor.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "fv/problem.hpp"

using namespace fvdf;

namespace {

// Pre-refactor serial engine on this host, same workload (see header).
constexpr f64 kSeedWallSeconds = 1.052;
constexpr u64 kSeedEvents = 1391439;
constexpr f64 kSeedEventsPerSec = 1.322e6;

struct Run {
  u32 threads = 1;
  f64 wall_seconds = 0;
  u64 events = 0;
  f64 events_per_sec = 0;
  bool bitwise_identical = true; // vs the threads=1 run of this binary
};

core::DataflowResult solve(u32 threads) {
  const auto problem = FlowProblem::homogeneous_column(64, 64, 8);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 10;
  config.sim_threads = threads;
  return core::solve_dataflow(problem, config);
}

bool same_bits(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

} // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: micro_sim_throughput [--out PATH]\n";
      return 2;
    }
  }

  std::vector<u32> thread_counts = {1, 2, 4};
  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  bool have_hw = false;
  for (u32 t : thread_counts) have_hw |= t == hw;
  if (!have_hw) thread_counts.push_back(hw);

  std::cout << "=== bench/micro_sim_throughput — event-engine throughput ===\n"
            << "workload: 64x64x8 device CG, 10 iterations ("
            << 64 * 64 << " PEs); hardware threads: " << hw << "\n\n";

  std::vector<Run> runs;
  core::DataflowResult reference; // threads=1
  for (u32 threads : thread_counts) {
    const auto start = std::chrono::steady_clock::now();
    auto result = solve(threads);
    const auto stop = std::chrono::steady_clock::now();

    Run run;
    run.threads = threads;
    run.wall_seconds = std::chrono::duration<f64>(stop - start).count();
    run.events = result.fabric.events_processed;
    run.events_per_sec = static_cast<f64>(run.events) / run.wall_seconds;
    if (runs.empty()) {
      reference = std::move(result);
    } else {
      run.bitwise_identical = same_bits(result.delta, reference.delta) &&
                              same_bits(result.pressure, reference.pressure) &&
                              result.fabric == reference.fabric &&
                              result.iterations == reference.iterations;
    }
    runs.push_back(run);

    std::cout << "threads=" << run.threads << ": " << run.wall_seconds
              << " s, " << run.events << " events, "
              << run.events_per_sec / 1e6 << " Mev/s, speedup vs seed "
              << run.events_per_sec / kSeedEventsPerSec
              << (run.bitwise_identical ? "" : "  [MISMATCH vs threads=1]")
              << '\n';
  }

  bool all_identical = true;
  for (const Run& run : runs) all_identical &= run.bitwise_identical;

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sim_throughput\",\n"
       << "  \"workload\": \"64x64x8 device CG, tolerance 0, 10 iterations\",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"seed_baseline\": {\n"
       << "    \"note\": \"pre-refactor serial engine, same host and workload\",\n"
       << "    \"wall_seconds\": " << kSeedWallSeconds << ",\n"
       << "    \"events\": " << kSeedEvents << ",\n"
       << "    \"events_per_sec\": " << kSeedEventsPerSec << "\n"
       << "  },\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"threads\": " << run.threads
         << ", \"wall_seconds\": " << run.wall_seconds
         << ", \"events\": " << run.events
         << ", \"events_per_sec\": " << run.events_per_sec
         << ", \"speedup_vs_seed\": " << run.events_per_sec / kSeedEventsPerSec
         << ", \"speedup_vs_one_thread\": "
         << run.events_per_sec / runs[0].events_per_sec
         << ", \"bitwise_identical\": "
         << (run.bitwise_identical ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << '\n';
  }
  json << "  ],\n"
       << "  \"all_thread_counts_bitwise_identical\": "
       << (all_identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote " << out_path << '\n';
  return all_identical ? 0 : 1;
}
