// Event-engine throughput: how fast does the fabric simulator itself run?
//
// Workloads — a 64x64x8 device CG solve (4,096 PEs, the standard row), an
// optional 128x128x8 solve (16,384 PEs, the scaling row) and an opt-in
// 256x256x8 solve (65,536 PEs, the tile-sharding stress row), all
// tolerance 0, 10 iterations — executed at several worker-thread counts.
// For each run the bench reports host wall-clock, processed simulator
// events and events/second, checks that every thread count reproduces the
// single-thread solution bitwise, and writes the table to
// BENCH_sim_throughput.json (in the working directory, or --out PATH).
//
// Flags:
//   --out PATH            JSON output path (default BENCH_sim_throughput.json)
//   --csv PATH            also write one CSV row per run
//   --threads-sweep LIST  comma-separated thread counts (default 1,2,4,8),
//                         honored by every workload
//   --skip-large          measure only the 64x64x8 workload
//   --xl                  also measure the 256x256x8 workload (expensive;
//                         its rows land under "xl_workload" in the JSON)
//   --engine NAME         device-program engine: bytecode (default) | legacy
//   --layout RxC          force the shard grid (R tile rows x C tile cols;
//                         0 lets the cost model pick that dimension; the
//                         default is the full cost-model 2D choice)
//   --check-layout-identity
//                         additionally solve each workload under the auto
//                         2D layout, forced 1D row strips and a serial
//                         single shard and require bitwise-identical
//                         results — the layout-invariance gate
//                         scripts/check_scaling.sh runs on hosts too small
//                         to measure scaling
//   --reps N              repetitions per thread count; wall_seconds becomes
//                         the min across reps and wall_median / wall_stddev /
//                         reps columns are appended (after bitwise_identical,
//                         so existing field positions are stable)
//   --profile-host        attach the host-side profiler to every run and
//                         report its critical-path max-speedup bound plus
//                         per-tile stall attribution for the sweep's last
//                         thread count — lets scripts/check_scaling.sh tell
//                         "engine overhead" from "workload admits no
//                         parallelism", and which tile is the bottleneck
//
// `seed_baseline` in the JSON is the 64x64x8 workload measured on the
// pre-refactor serial engine (std::priority_queue, per-send payload
// allocation, word-at-a-time ramp delivery) on the same host, so the file
// records both the single-thread speedup of the engine overhaul and the
// multi-thread scaling of the sharded executor.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "fv/problem.hpp"
#include "telemetry/host_profiler.hpp"

using namespace fvdf;

namespace {

// Pre-refactor serial engine on this host, 64x64x8 workload (see header).
constexpr f64 kSeedWallSeconds = 1.052;
constexpr u64 kSeedEvents = 1391439;
constexpr f64 kSeedEventsPerSec = 1.322e6;

// Same pre-refactor engine, 128x128x8 workload, best of 3 single-thread
// runs — the large rows get their own reference so speedup_vs_seed
// always compares like with like.
constexpr f64 kSeedLargeWallSeconds = 7.941;
constexpr u64 kSeedLargeEvents = 5566191;
constexpr f64 kSeedLargeEventsPerSec = 0.7009e6;

struct Workload {
  const char* name;
  i64 nx, ny, nz;
};

struct Run {
  const char* workload = nullptr;
  u32 threads = 1;
  f64 wall_seconds = 0; // min across reps
  u64 events = 0;
  f64 events_per_sec = 0;
  f64 speedup_vs_one_thread = 1.0;
  bool bitwise_identical = true; // vs the threads=1 run of the same workload
  f64 wall_median = 0;
  f64 wall_stddev = 0;
  u32 reps = 1;
  // --profile-host only (0 otherwise): critical-path max-speedup bound at
  // this thread count and its T -> infinity limit.
  f64 speedup_bound = 0;
  f64 speedup_bound_unbounded = 0;
};

core::SimEngine g_engine = core::SimEngine::Bytecode;
wse::ShardGrid g_grid{}; // {0,0} = cost model; --layout overrides

core::DataflowResult solve(const Workload& w, u32 threads,
                           telemetry::HostProfiler* profiler,
                           wse::ShardGrid grid) {
  const auto problem = FlowProblem::homogeneous_column(w.nx, w.ny, w.nz);
  core::DataflowConfig config;
  config.tolerance = 0.0f;
  config.max_iterations = 10;
  config.sim_threads = threads;
  config.engine = g_engine;
  config.shard_grid = grid;
  config.host_profiler = profiler;
  return core::solve_dataflow(problem, config);
}

bool same_bits(const std::vector<f32>& a, const std::vector<f32>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(f32)) == 0);
}

std::vector<u32> parse_sweep(const std::string& arg) {
  std::vector<u32> sweep;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    if (v < 1) {
      std::cerr << "bad --threads-sweep entry: " << item << '\n';
      std::exit(2);
    }
    sweep.push_back(static_cast<u32>(v));
  }
  if (sweep.empty()) {
    std::cerr << "--threads-sweep needs at least one thread count\n";
    std::exit(2);
  }
  return sweep;
}

std::vector<Run> measure(const Workload& w, const std::vector<u32>& sweep,
                         u32 reps, bool profile_host) {
  std::vector<Run> runs;
  core::DataflowResult reference; // first sweep entry (put 1 first)
  for (u32 threads : sweep) {
    telemetry::HostProfiler profiler; // re-armed per solve; last rep survives
    std::vector<f64> walls;
    walls.reserve(reps);
    core::DataflowResult result;
    for (u32 rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result = solve(w, threads, profile_host ? &profiler : nullptr, g_grid);
      const auto stop = std::chrono::steady_clock::now();
      walls.push_back(std::chrono::duration<f64>(stop - start).count());
    }
    std::sort(walls.begin(), walls.end());

    Run run;
    run.workload = w.name;
    run.threads = threads;
    run.reps = reps;
    run.wall_seconds = walls.front();
    run.wall_median = reps % 2 == 1
                          ? walls[reps / 2]
                          : 0.5 * (walls[reps / 2 - 1] + walls[reps / 2]);
    f64 mean = 0;
    for (f64 s : walls) mean += s;
    mean /= reps;
    f64 var = 0;
    for (f64 s : walls) var += (s - mean) * (s - mean);
    run.wall_stddev = reps > 1 ? std::sqrt(var / (reps - 1)) : 0.0;
    run.events = result.fabric.events_processed;
    run.events_per_sec = static_cast<f64>(run.events) / run.wall_seconds;
    if (profiler.captured()) {
      run.speedup_bound = profiler.max_speedup_bound(threads);
      run.speedup_bound_unbounded = profiler.max_speedup_unbounded();
    }
    if (runs.empty()) {
      reference = std::move(result);
    } else {
      run.bitwise_identical = same_bits(result.delta, reference.delta) &&
                              same_bits(result.pressure, reference.pressure) &&
                              result.fabric == reference.fabric &&
                              result.iterations == reference.iterations;
      run.speedup_vs_one_thread = runs.front().wall_seconds / run.wall_seconds;
    }
    runs.push_back(run);

    std::cout << w.name << " threads=" << run.threads << ": "
              << run.wall_seconds << " s, " << run.events << " events, "
              << run.events_per_sec / 1e6 << " Mev/s, speedup vs 1-thread "
              << run.speedup_vs_one_thread
              << (run.bitwise_identical ? "" : "  [MISMATCH vs threads=1]")
              << '\n';
    if (reps > 1)
      std::cout << "  reps: " << reps << "  min " << run.wall_seconds
                << " s  median " << run.wall_median << " s  stddev "
                << run.wall_stddev << " s\n";
    if (profiler.captured())
      std::cout << "  critical-path bound: max speedup " << run.speedup_bound
                << "x at " << threads << " threads ("
                << run.speedup_bound_unbounded << "x unbounded)\n";
    // Per-tile stall attribution for the sweep's last entry: which tile the
    // gate should blame when the measured speedup misses the bound.
    if (profiler.captured() && threads == sweep.back() &&
        profiler.shards() > 1 && profiler.tile_cols() > 0) {
      for (u32 s = 0; s < profiler.shards(); ++s) {
        const telemetry::HostShardStats& st = profiler.shard_stats(s);
        const f64 total = static_cast<f64>(st.rounds_total());
        const auto pct = [&](u64 n) {
          return total > 0 ? 100.0 * static_cast<f64>(n) / total : 0.0;
        };
        const auto& rects = profiler.tile_rects();
        std::cout << "  tile (" << s / profiler.tile_cols() << ','
                  << s % profiler.tile_cols() << ')';
        if (s < rects.size())
          std::cout << " rows " << rects[s].row_begin << ".."
                    << rects[s].row_end - 1 << " cols " << rects[s].col_begin
                    << ".." << rects[s].col_end - 1;
        char bins[96];
        std::snprintf(bins, sizeof bins,
                      ": worked %5.1f%%  window %5.1f%%  backpr %5.1f%%  "
                      "starved %5.1f%%",
                      pct(st.rounds_worked), pct(st.rounds_window_limited),
                      pct(st.rounds_backpressure), pct(st.rounds_starved));
        std::cout << bins << "  events " << st.events << '\n';
      }
    }
  }
  return runs;
}

// The layout-invariance gate: the same workload solved under the auto 2D
// tiling, forced 1D row strips and a serial single shard must agree bit
// for bit (scripts/check_scaling.sh runs this on hosts that cannot
// demonstrate scaling — correctness is checkable even where speed is not).
bool check_layout_identity(const Workload& w, u32 threads) {
  struct Named {
    const char* name;
    wse::ShardGrid grid;
  };
  const Named layouts[] = {
      {"auto-2d", wse::ShardGrid{}},
      {"1d-strips", wse::ShardGrid{0, 1}},
      {"serial", wse::ShardGrid{1, 1}},
  };
  const auto reference = solve(w, 1, nullptr, layouts[2].grid);
  bool ok = true;
  for (const Named& layout : layouts) {
    const auto result = solve(w, threads, nullptr, layout.grid);
    const bool identical = same_bits(result.delta, reference.delta) &&
                           same_bits(result.pressure, reference.pressure) &&
                           result.fabric == reference.fabric &&
                           result.iterations == reference.iterations;
    std::cout << w.name << " layout " << layout.name << " threads=" << threads
              << ": " << (identical ? "identical to serial" : "MISMATCH")
              << '\n';
    ok &= identical;
  }
  return ok;
}

void write_runs_json(std::ofstream& json, const std::vector<Run>& runs,
                     f64 seed_events_per_sec, const char* indent) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << indent << "{\"threads\": " << run.threads
         << ", \"wall_seconds\": " << run.wall_seconds
         << ", \"events\": " << run.events
         << ", \"events_per_sec\": " << run.events_per_sec;
    // The xl workload has no pre-refactor measurement to compare against.
    if (seed_events_per_sec > 0)
      json << ", \"speedup_vs_seed\": "
           << run.events_per_sec / seed_events_per_sec;
    json << ", \"speedup_vs_one_thread\": " << run.speedup_vs_one_thread
         << ", \"bitwise_identical\": "
         << (run.bitwise_identical ? "true" : "false")
         << ", \"wall_median\": " << run.wall_median
         << ", \"wall_stddev\": " << run.wall_stddev
         << ", \"reps\": " << run.reps;
    if (run.speedup_bound > 0)
      json << ", \"speedup_bound\": " << run.speedup_bound
           << ", \"speedup_bound_unbounded\": " << run.speedup_bound_unbounded;
    json << "}" << (i + 1 < runs.size() ? "," : "") << '\n';
  }
}

} // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim_throughput.json";
  std::string csv_path;
  std::vector<u32> sweep = {1, 2, 4, 8};
  bool skip_large = false;
  bool with_xl = false;
  bool layout_identity = false;
  long reps = 1;
  bool profile_host = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads-sweep") == 0 && i + 1 < argc) {
      sweep = parse_sweep(argv[++i]);
    } else if (std::strcmp(argv[i], "--skip-large") == 0) {
      skip_large = true;
    } else if (std::strcmp(argv[i], "--xl") == 0) {
      with_xl = true;
    } else if (std::strcmp(argv[i], "--check-layout-identity") == 0) {
      layout_identity = true;
    } else if (std::strcmp(argv[i], "--layout") == 0 && i + 1 < argc) {
      unsigned rows = 0;
      unsigned cols = 0;
      if (std::sscanf(argv[++i], "%ux%u", &rows, &cols) != 2) {
        std::cerr << "bad --layout (want RxC, e.g. 4x4 or 0x1): " << argv[i]
                  << '\n';
        return 2;
      }
      g_grid = wse::ShardGrid{static_cast<u32>(rows), static_cast<u32>(cols)};
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::strtol(argv[++i], nullptr, 10);
      if (reps < 1) {
        std::cerr << "bad --reps (want >= 1): " << argv[i] << '\n';
        return 2;
      }
    } else if (std::strcmp(argv[i], "--profile-host") == 0) {
      profile_host = true;
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "bytecode") {
        g_engine = core::SimEngine::Bytecode;
      } else if (name == "legacy") {
        g_engine = core::SimEngine::Legacy;
      } else {
        std::cerr << "bad --engine (want bytecode or legacy): " << name << '\n';
        return 2;
      }
    } else {
      std::cerr << "usage: micro_sim_throughput [--out PATH] [--csv PATH]"
                   " [--threads-sweep N,N,...] [--skip-large] [--xl]"
                   " [--engine bytecode|legacy] [--layout RxC]"
                   " [--check-layout-identity] [--reps N] [--profile-host]\n";
      return 2;
    }
  }
  if (profile_host && !wse::Fabric::host_profiling_compiled())
    std::cerr << "warning: --profile-host requested but this build has "
                 "-DFVDF_TELEMETRY=OFF; no bounds will be reported\n";

  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "=== bench/micro_sim_throughput — event-engine throughput ===\n"
            << "hardware threads: " << hw << "\n\n";

  const Workload small{"64x64x8", 64, 64, 8};
  const Workload large{"128x128x8", 128, 128, 8};
  const Workload xl{"256x256x8", 256, 256, 8};

  std::vector<Run> runs =
      measure(small, sweep, static_cast<u32>(reps), profile_host);
  std::vector<Run> large_runs;
  if (!skip_large)
    large_runs = measure(large, sweep, static_cast<u32>(reps), profile_host);
  std::vector<Run> xl_runs;
  if (with_xl)
    xl_runs = measure(xl, sweep, static_cast<u32>(reps), profile_host);

  bool all_identical = true;
  for (const Run& run : runs) all_identical &= run.bitwise_identical;
  for (const Run& run : large_runs) all_identical &= run.bitwise_identical;
  for (const Run& run : xl_runs) all_identical &= run.bitwise_identical;

  if (layout_identity) {
    std::cout << "\n--- layout identity (auto 2D vs 1D strips vs serial) ---\n";
    all_identical &= check_layout_identity(small, sweep.back());
    if (!skip_large) all_identical &= check_layout_identity(large, sweep.back());
    if (with_xl) all_identical &= check_layout_identity(xl, sweep.back());
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sim_throughput\",\n"
       << "  \"workload\": \"64x64x8 device CG, tolerance 0, 10 iterations\",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"seed_baseline\": {\n"
       << "    \"note\": \"pre-refactor serial engine, same host and workload\",\n"
       << "    \"wall_seconds\": " << kSeedWallSeconds << ",\n"
       << "    \"events\": " << kSeedEvents << ",\n"
       << "    \"events_per_sec\": " << kSeedEventsPerSec << "\n"
       << "  },\n"
       << "  \"runs\": [\n";
  write_runs_json(json, runs, kSeedEventsPerSec, "    ");
  json << "  ],\n";
  if (!large_runs.empty()) {
    json << "  \"large_workload\": {\n"
         << "    \"workload\": \"128x128x8 device CG, tolerance 0, 10 iterations\",\n"
         << "    \"seed_baseline\": {\n"
         << "      \"note\": \"pre-refactor serial engine, same host and workload\",\n"
         << "      \"wall_seconds\": " << kSeedLargeWallSeconds << ",\n"
         << "      \"events\": " << kSeedLargeEvents << ",\n"
         << "      \"events_per_sec\": " << kSeedLargeEventsPerSec << "\n"
         << "    },\n"
         << "    \"runs\": [\n";
    write_runs_json(json, large_runs, kSeedLargeEventsPerSec, "      ");
    json << "    ]\n"
         << "  },\n";
  }
  if (!xl_runs.empty()) {
    json << "  \"xl_workload\": {\n"
         << "    \"workload\": \"256x256x8 device CG, tolerance 0, 10 iterations\",\n"
         << "    \"runs\": [\n";
    write_runs_json(json, xl_runs, 0.0, "      ");
    json << "    ]\n"
         << "  },\n";
  }
  json << "  \"all_thread_counts_bitwise_identical\": "
       << (all_identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote " << out_path << '\n';

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    // New columns only ever append after bitwise_identical: check_scaling.sh
    // addresses wall_seconds and bitwise_identical by field position.
    csv << "workload,threads,wall_seconds,events,events_per_sec,"
           "speedup_vs_one_thread,bitwise_identical,wall_median,wall_stddev,"
           "reps\n";
    auto emit = [&](const std::vector<Run>& rs) {
      for (const Run& run : rs)
        csv << run.workload << ',' << run.threads << ',' << run.wall_seconds
            << ',' << run.events << ',' << run.events_per_sec << ','
            << run.speedup_vs_one_thread << ','
            << (run.bitwise_identical ? "true" : "false") << ','
            << run.wall_median << ',' << run.wall_stddev << ',' << run.reps
            << '\n';
    };
    emit(runs);
    emit(large_runs);
    emit(xl_runs);
    std::cout << "wrote " << csv_path << '\n';
  }
  return all_identical ? 0 : 1;
}
