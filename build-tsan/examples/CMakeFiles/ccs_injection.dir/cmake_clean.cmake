file(REMOVE_RECURSE
  "CMakeFiles/ccs_injection.dir/ccs_injection.cpp.o"
  "CMakeFiles/ccs_injection.dir/ccs_injection.cpp.o.d"
  "ccs_injection"
  "ccs_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccs_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
