# Empty compiler generated dependencies file for ccs_injection.
# This may be replaced when dependencies are built.
