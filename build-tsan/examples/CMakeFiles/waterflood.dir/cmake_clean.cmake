file(REMOVE_RECURSE
  "CMakeFiles/waterflood.dir/waterflood.cpp.o"
  "CMakeFiles/waterflood.dir/waterflood.cpp.o.d"
  "waterflood"
  "waterflood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waterflood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
