# Empty dependencies file for waterflood.
# This may be replaced when dependencies are built.
