# Empty dependencies file for transient_injection.
# This may be replaced when dependencies are built.
