file(REMOVE_RECURSE
  "CMakeFiles/transient_injection.dir/transient_injection.cpp.o"
  "CMakeFiles/transient_injection.dir/transient_injection.cpp.o.d"
  "transient_injection"
  "transient_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
