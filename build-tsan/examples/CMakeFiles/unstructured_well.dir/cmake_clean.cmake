file(REMOVE_RECURSE
  "CMakeFiles/unstructured_well.dir/unstructured_well.cpp.o"
  "CMakeFiles/unstructured_well.dir/unstructured_well.cpp.o.d"
  "unstructured_well"
  "unstructured_well.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unstructured_well.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
