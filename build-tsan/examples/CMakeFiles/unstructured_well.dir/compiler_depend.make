# Empty compiler generated dependencies file for unstructured_well.
# This may be replaced when dependencies are built.
