file(REMOVE_RECURSE
  "CMakeFiles/fabric_explorer.dir/fabric_explorer.cpp.o"
  "CMakeFiles/fabric_explorer.dir/fabric_explorer.cpp.o.d"
  "fabric_explorer"
  "fabric_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
