# Empty compiler generated dependencies file for fabric_explorer.
# This may be replaced when dependencies are built.
