file(REMOVE_RECURSE
  "CMakeFiles/ablation_chebyshev.dir/ablation_chebyshev.cpp.o"
  "CMakeFiles/ablation_chebyshev.dir/ablation_chebyshev.cpp.o.d"
  "ablation_chebyshev"
  "ablation_chebyshev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chebyshev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
