file(REMOVE_RECURSE
  "CMakeFiles/fig6_roofline.dir/fig6_roofline.cpp.o"
  "CMakeFiles/fig6_roofline.dir/fig6_roofline.cpp.o.d"
  "fig6_roofline"
  "fig6_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
