# Empty compiler generated dependencies file for fig6_roofline.
# This may be replaced when dependencies are built.
