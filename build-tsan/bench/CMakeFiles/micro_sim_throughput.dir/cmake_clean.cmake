file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_throughput.dir/micro_sim_throughput.cpp.o"
  "CMakeFiles/micro_sim_throughput.dir/micro_sim_throughput.cpp.o.d"
  "micro_sim_throughput"
  "micro_sim_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
