# Empty dependencies file for micro_sim_throughput.
# This may be replaced when dependencies are built.
