file(REMOVE_RECURSE
  "CMakeFiles/ablation_precond.dir/ablation_precond.cpp.o"
  "CMakeFiles/ablation_precond.dir/ablation_precond.cpp.o.d"
  "ablation_precond"
  "ablation_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
