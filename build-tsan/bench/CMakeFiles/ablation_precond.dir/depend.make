# Empty dependencies file for ablation_precond.
# This may be replaced when dependencies are built.
