# Empty dependencies file for table4_comm.
# This may be replaced when dependencies are built.
