file(REMOVE_RECURSE
  "CMakeFiles/table4_comm.dir/table4_comm.cpp.o"
  "CMakeFiles/table4_comm.dir/table4_comm.cpp.o.d"
  "table4_comm"
  "table4_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
