file(REMOVE_RECURSE
  "CMakeFiles/table2_timing.dir/table2_timing.cpp.o"
  "CMakeFiles/table2_timing.dir/table2_timing.cpp.o.d"
  "table2_timing"
  "table2_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
