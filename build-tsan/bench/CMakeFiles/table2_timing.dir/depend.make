# Empty dependencies file for table2_timing.
# This may be replaced when dependencies are built.
