file(REMOVE_RECURSE
  "CMakeFiles/table5_opcounts.dir/table5_opcounts.cpp.o"
  "CMakeFiles/table5_opcounts.dir/table5_opcounts.cpp.o.d"
  "table5_opcounts"
  "table5_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
