# Empty dependencies file for table5_opcounts.
# This may be replaced when dependencies are built.
