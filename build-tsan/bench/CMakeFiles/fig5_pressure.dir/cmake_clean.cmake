file(REMOVE_RECURSE
  "CMakeFiles/fig5_pressure.dir/fig5_pressure.cpp.o"
  "CMakeFiles/fig5_pressure.dir/fig5_pressure.cpp.o.d"
  "fig5_pressure"
  "fig5_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
