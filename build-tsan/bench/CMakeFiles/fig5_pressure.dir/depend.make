# Empty dependencies file for fig5_pressure.
# This may be replaced when dependencies are built.
