file(REMOVE_RECURSE
  "CMakeFiles/ablation_matrixfree.dir/ablation_matrixfree.cpp.o"
  "CMakeFiles/ablation_matrixfree.dir/ablation_matrixfree.cpp.o.d"
  "ablation_matrixfree"
  "ablation_matrixfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matrixfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
