# Empty dependencies file for ablation_matrixfree.
# This may be replaced when dependencies are built.
