# Empty dependencies file for table3_scaling.
# This may be replaced when dependencies are built.
