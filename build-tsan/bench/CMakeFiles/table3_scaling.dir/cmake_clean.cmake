file(REMOVE_RECURSE
  "CMakeFiles/table3_scaling.dir/table3_scaling.cpp.o"
  "CMakeFiles/table3_scaling.dir/table3_scaling.cpp.o.d"
  "table3_scaling"
  "table3_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
