# Empty dependencies file for fvdf_common.
# This may be replaced when dependencies are built.
