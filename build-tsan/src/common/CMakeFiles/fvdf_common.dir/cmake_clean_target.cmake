file(REMOVE_RECURSE
  "libfvdf_common.a"
)
