file(REMOVE_RECURSE
  "CMakeFiles/fvdf_common.dir/cli.cpp.o"
  "CMakeFiles/fvdf_common.dir/cli.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/config.cpp.o"
  "CMakeFiles/fvdf_common.dir/config.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/image.cpp.o"
  "CMakeFiles/fvdf_common.dir/image.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/log.cpp.o"
  "CMakeFiles/fvdf_common.dir/log.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/rng.cpp.o"
  "CMakeFiles/fvdf_common.dir/rng.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/serialize.cpp.o"
  "CMakeFiles/fvdf_common.dir/serialize.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/stats.cpp.o"
  "CMakeFiles/fvdf_common.dir/stats.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/table.cpp.o"
  "CMakeFiles/fvdf_common.dir/table.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/thread_pool.cpp.o"
  "CMakeFiles/fvdf_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/fvdf_common.dir/units.cpp.o"
  "CMakeFiles/fvdf_common.dir/units.cpp.o.d"
  "libfvdf_common.a"
  "libfvdf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
