# Empty dependencies file for fvdf_csl.
# This may be replaced when dependencies are built.
