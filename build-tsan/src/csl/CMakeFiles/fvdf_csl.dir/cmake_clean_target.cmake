file(REMOVE_RECURSE
  "libfvdf_csl.a"
)
