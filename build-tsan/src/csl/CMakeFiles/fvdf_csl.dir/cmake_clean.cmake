file(REMOVE_RECURSE
  "CMakeFiles/fvdf_csl.dir/allreduce.cpp.o"
  "CMakeFiles/fvdf_csl.dir/allreduce.cpp.o.d"
  "CMakeFiles/fvdf_csl.dir/any_source.cpp.o"
  "CMakeFiles/fvdf_csl.dir/any_source.cpp.o.d"
  "CMakeFiles/fvdf_csl.dir/broadcast.cpp.o"
  "CMakeFiles/fvdf_csl.dir/broadcast.cpp.o.d"
  "CMakeFiles/fvdf_csl.dir/halo.cpp.o"
  "CMakeFiles/fvdf_csl.dir/halo.cpp.o.d"
  "libfvdf_csl.a"
  "libfvdf_csl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_csl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
