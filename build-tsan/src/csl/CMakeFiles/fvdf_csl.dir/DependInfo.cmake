
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csl/allreduce.cpp" "src/csl/CMakeFiles/fvdf_csl.dir/allreduce.cpp.o" "gcc" "src/csl/CMakeFiles/fvdf_csl.dir/allreduce.cpp.o.d"
  "/root/repo/src/csl/any_source.cpp" "src/csl/CMakeFiles/fvdf_csl.dir/any_source.cpp.o" "gcc" "src/csl/CMakeFiles/fvdf_csl.dir/any_source.cpp.o.d"
  "/root/repo/src/csl/broadcast.cpp" "src/csl/CMakeFiles/fvdf_csl.dir/broadcast.cpp.o" "gcc" "src/csl/CMakeFiles/fvdf_csl.dir/broadcast.cpp.o.d"
  "/root/repo/src/csl/halo.cpp" "src/csl/CMakeFiles/fvdf_csl.dir/halo.cpp.o" "gcc" "src/csl/CMakeFiles/fvdf_csl.dir/halo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/wse/CMakeFiles/fvdf_wse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/fvdf_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
