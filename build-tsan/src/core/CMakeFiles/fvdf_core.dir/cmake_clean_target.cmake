file(REMOVE_RECURSE
  "libfvdf_core.a"
)
