
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chebyshev_program.cpp" "src/core/CMakeFiles/fvdf_core.dir/chebyshev_program.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/chebyshev_program.cpp.o.d"
  "/root/repo/src/core/flux_kernels.cpp" "src/core/CMakeFiles/fvdf_core.dir/flux_kernels.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/flux_kernels.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/fvdf_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/multiphase_backend.cpp" "src/core/CMakeFiles/fvdf_core.dir/multiphase_backend.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/multiphase_backend.cpp.o.d"
  "/root/repo/src/core/pe_program.cpp" "src/core/CMakeFiles/fvdf_core.dir/pe_program.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/pe_program.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/fvdf_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/fvdf_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/fvdf_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/csl/CMakeFiles/fvdf_csl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wse/CMakeFiles/fvdf_wse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/multiphase/CMakeFiles/fvdf_multiphase.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/fvdf_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/fvdf_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
