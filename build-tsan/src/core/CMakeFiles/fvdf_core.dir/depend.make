# Empty dependencies file for fvdf_core.
# This may be replaced when dependencies are built.
