file(REMOVE_RECURSE
  "CMakeFiles/fvdf_core.dir/chebyshev_program.cpp.o"
  "CMakeFiles/fvdf_core.dir/chebyshev_program.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/flux_kernels.cpp.o"
  "CMakeFiles/fvdf_core.dir/flux_kernels.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/mapping.cpp.o"
  "CMakeFiles/fvdf_core.dir/mapping.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/multiphase_backend.cpp.o"
  "CMakeFiles/fvdf_core.dir/multiphase_backend.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/pe_program.cpp.o"
  "CMakeFiles/fvdf_core.dir/pe_program.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/solver.cpp.o"
  "CMakeFiles/fvdf_core.dir/solver.cpp.o.d"
  "CMakeFiles/fvdf_core.dir/validation.cpp.o"
  "CMakeFiles/fvdf_core.dir/validation.cpp.o.d"
  "libfvdf_core.a"
  "libfvdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
