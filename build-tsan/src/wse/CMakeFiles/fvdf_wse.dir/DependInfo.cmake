
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wse/dsd.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/dsd.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/dsd.cpp.o.d"
  "/root/repo/src/wse/fabric.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/fabric.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/fabric.cpp.o.d"
  "/root/repo/src/wse/geometry.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/geometry.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/geometry.cpp.o.d"
  "/root/repo/src/wse/memory.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/memory.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/memory.cpp.o.d"
  "/root/repo/src/wse/payload_pool.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/payload_pool.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/payload_pool.cpp.o.d"
  "/root/repo/src/wse/router.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/router.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/router.cpp.o.d"
  "/root/repo/src/wse/trace.cpp" "src/wse/CMakeFiles/fvdf_wse.dir/trace.cpp.o" "gcc" "src/wse/CMakeFiles/fvdf_wse.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/perf/CMakeFiles/fvdf_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
