file(REMOVE_RECURSE
  "libfvdf_wse.a"
)
