file(REMOVE_RECURSE
  "CMakeFiles/fvdf_wse.dir/dsd.cpp.o"
  "CMakeFiles/fvdf_wse.dir/dsd.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/fabric.cpp.o"
  "CMakeFiles/fvdf_wse.dir/fabric.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/geometry.cpp.o"
  "CMakeFiles/fvdf_wse.dir/geometry.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/memory.cpp.o"
  "CMakeFiles/fvdf_wse.dir/memory.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/payload_pool.cpp.o"
  "CMakeFiles/fvdf_wse.dir/payload_pool.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/router.cpp.o"
  "CMakeFiles/fvdf_wse.dir/router.cpp.o.d"
  "CMakeFiles/fvdf_wse.dir/trace.cpp.o"
  "CMakeFiles/fvdf_wse.dir/trace.cpp.o.d"
  "libfvdf_wse.a"
  "libfvdf_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
