# Empty dependencies file for fvdf_wse.
# This may be replaced when dependencies are built.
