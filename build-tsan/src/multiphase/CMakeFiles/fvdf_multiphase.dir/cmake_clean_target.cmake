file(REMOVE_RECURSE
  "libfvdf_multiphase.a"
)
