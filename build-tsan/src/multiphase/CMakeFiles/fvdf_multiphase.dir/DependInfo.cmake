
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiphase/impes.cpp" "src/multiphase/CMakeFiles/fvdf_multiphase.dir/impes.cpp.o" "gcc" "src/multiphase/CMakeFiles/fvdf_multiphase.dir/impes.cpp.o.d"
  "/root/repo/src/multiphase/relperm.cpp" "src/multiphase/CMakeFiles/fvdf_multiphase.dir/relperm.cpp.o" "gcc" "src/multiphase/CMakeFiles/fvdf_multiphase.dir/relperm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solver/CMakeFiles/fvdf_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
