# Empty dependencies file for fvdf_multiphase.
# This may be replaced when dependencies are built.
