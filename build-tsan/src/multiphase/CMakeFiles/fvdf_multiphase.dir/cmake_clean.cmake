file(REMOVE_RECURSE
  "CMakeFiles/fvdf_multiphase.dir/impes.cpp.o"
  "CMakeFiles/fvdf_multiphase.dir/impes.cpp.o.d"
  "CMakeFiles/fvdf_multiphase.dir/relperm.cpp.o"
  "CMakeFiles/fvdf_multiphase.dir/relperm.cpp.o.d"
  "libfvdf_multiphase.a"
  "libfvdf_multiphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_multiphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
