file(REMOVE_RECURSE
  "CMakeFiles/fvdf_mesh.dir/bc.cpp.o"
  "CMakeFiles/fvdf_mesh.dir/bc.cpp.o.d"
  "CMakeFiles/fvdf_mesh.dir/cartesian.cpp.o"
  "CMakeFiles/fvdf_mesh.dir/cartesian.cpp.o.d"
  "CMakeFiles/fvdf_mesh.dir/fields.cpp.o"
  "CMakeFiles/fvdf_mesh.dir/fields.cpp.o.d"
  "CMakeFiles/fvdf_mesh.dir/transmissibility.cpp.o"
  "CMakeFiles/fvdf_mesh.dir/transmissibility.cpp.o.d"
  "CMakeFiles/fvdf_mesh.dir/vtk.cpp.o"
  "CMakeFiles/fvdf_mesh.dir/vtk.cpp.o.d"
  "libfvdf_mesh.a"
  "libfvdf_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
