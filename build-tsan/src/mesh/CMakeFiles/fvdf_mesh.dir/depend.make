# Empty dependencies file for fvdf_mesh.
# This may be replaced when dependencies are built.
