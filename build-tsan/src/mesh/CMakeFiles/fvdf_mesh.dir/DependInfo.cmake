
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/bc.cpp" "src/mesh/CMakeFiles/fvdf_mesh.dir/bc.cpp.o" "gcc" "src/mesh/CMakeFiles/fvdf_mesh.dir/bc.cpp.o.d"
  "/root/repo/src/mesh/cartesian.cpp" "src/mesh/CMakeFiles/fvdf_mesh.dir/cartesian.cpp.o" "gcc" "src/mesh/CMakeFiles/fvdf_mesh.dir/cartesian.cpp.o.d"
  "/root/repo/src/mesh/fields.cpp" "src/mesh/CMakeFiles/fvdf_mesh.dir/fields.cpp.o" "gcc" "src/mesh/CMakeFiles/fvdf_mesh.dir/fields.cpp.o.d"
  "/root/repo/src/mesh/transmissibility.cpp" "src/mesh/CMakeFiles/fvdf_mesh.dir/transmissibility.cpp.o" "gcc" "src/mesh/CMakeFiles/fvdf_mesh.dir/transmissibility.cpp.o.d"
  "/root/repo/src/mesh/vtk.cpp" "src/mesh/CMakeFiles/fvdf_mesh.dir/vtk.cpp.o" "gcc" "src/mesh/CMakeFiles/fvdf_mesh.dir/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
