file(REMOVE_RECURSE
  "libfvdf_mesh.a"
)
