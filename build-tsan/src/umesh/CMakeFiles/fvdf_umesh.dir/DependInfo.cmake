
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/umesh/fabric_map.cpp" "src/umesh/CMakeFiles/fvdf_umesh.dir/fabric_map.cpp.o" "gcc" "src/umesh/CMakeFiles/fvdf_umesh.dir/fabric_map.cpp.o.d"
  "/root/repo/src/umesh/mesh.cpp" "src/umesh/CMakeFiles/fvdf_umesh.dir/mesh.cpp.o" "gcc" "src/umesh/CMakeFiles/fvdf_umesh.dir/mesh.cpp.o.d"
  "/root/repo/src/umesh/usolve.cpp" "src/umesh/CMakeFiles/fvdf_umesh.dir/usolve.cpp.o" "gcc" "src/umesh/CMakeFiles/fvdf_umesh.dir/usolve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/solver/CMakeFiles/fvdf_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
