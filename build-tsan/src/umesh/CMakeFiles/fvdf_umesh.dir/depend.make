# Empty dependencies file for fvdf_umesh.
# This may be replaced when dependencies are built.
