file(REMOVE_RECURSE
  "CMakeFiles/fvdf_umesh.dir/fabric_map.cpp.o"
  "CMakeFiles/fvdf_umesh.dir/fabric_map.cpp.o.d"
  "CMakeFiles/fvdf_umesh.dir/mesh.cpp.o"
  "CMakeFiles/fvdf_umesh.dir/mesh.cpp.o.d"
  "CMakeFiles/fvdf_umesh.dir/usolve.cpp.o"
  "CMakeFiles/fvdf_umesh.dir/usolve.cpp.o.d"
  "libfvdf_umesh.a"
  "libfvdf_umesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_umesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
