file(REMOVE_RECURSE
  "libfvdf_umesh.a"
)
