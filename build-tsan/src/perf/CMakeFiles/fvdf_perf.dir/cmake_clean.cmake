file(REMOVE_RECURSE
  "CMakeFiles/fvdf_perf.dir/analytic.cpp.o"
  "CMakeFiles/fvdf_perf.dir/analytic.cpp.o.d"
  "CMakeFiles/fvdf_perf.dir/machine.cpp.o"
  "CMakeFiles/fvdf_perf.dir/machine.cpp.o.d"
  "CMakeFiles/fvdf_perf.dir/opcount.cpp.o"
  "CMakeFiles/fvdf_perf.dir/opcount.cpp.o.d"
  "CMakeFiles/fvdf_perf.dir/roofline.cpp.o"
  "CMakeFiles/fvdf_perf.dir/roofline.cpp.o.d"
  "libfvdf_perf.a"
  "libfvdf_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
