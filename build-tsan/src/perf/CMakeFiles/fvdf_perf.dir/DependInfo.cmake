
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/analytic.cpp" "src/perf/CMakeFiles/fvdf_perf.dir/analytic.cpp.o" "gcc" "src/perf/CMakeFiles/fvdf_perf.dir/analytic.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/perf/CMakeFiles/fvdf_perf.dir/machine.cpp.o" "gcc" "src/perf/CMakeFiles/fvdf_perf.dir/machine.cpp.o.d"
  "/root/repo/src/perf/opcount.cpp" "src/perf/CMakeFiles/fvdf_perf.dir/opcount.cpp.o" "gcc" "src/perf/CMakeFiles/fvdf_perf.dir/opcount.cpp.o.d"
  "/root/repo/src/perf/roofline.cpp" "src/perf/CMakeFiles/fvdf_perf.dir/roofline.cpp.o" "gcc" "src/perf/CMakeFiles/fvdf_perf.dir/roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
