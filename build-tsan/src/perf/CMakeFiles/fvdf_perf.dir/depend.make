# Empty dependencies file for fvdf_perf.
# This may be replaced when dependencies are built.
