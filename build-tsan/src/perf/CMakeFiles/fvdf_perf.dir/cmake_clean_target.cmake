file(REMOVE_RECURSE
  "libfvdf_perf.a"
)
