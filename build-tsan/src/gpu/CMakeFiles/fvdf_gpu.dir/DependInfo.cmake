
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cuda_model.cpp" "src/gpu/CMakeFiles/fvdf_gpu.dir/cuda_model.cpp.o" "gcc" "src/gpu/CMakeFiles/fvdf_gpu.dir/cuda_model.cpp.o.d"
  "/root/repo/src/gpu/gpu_solver.cpp" "src/gpu/CMakeFiles/fvdf_gpu.dir/gpu_solver.cpp.o" "gcc" "src/gpu/CMakeFiles/fvdf_gpu.dir/gpu_solver.cpp.o.d"
  "/root/repo/src/gpu/kernels.cpp" "src/gpu/CMakeFiles/fvdf_gpu.dir/kernels.cpp.o" "gcc" "src/gpu/CMakeFiles/fvdf_gpu.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/fvdf_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
