# Empty dependencies file for fvdf_gpu.
# This may be replaced when dependencies are built.
