file(REMOVE_RECURSE
  "libfvdf_gpu.a"
)
