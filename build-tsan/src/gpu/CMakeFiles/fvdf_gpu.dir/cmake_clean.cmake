file(REMOVE_RECURSE
  "CMakeFiles/fvdf_gpu.dir/cuda_model.cpp.o"
  "CMakeFiles/fvdf_gpu.dir/cuda_model.cpp.o.d"
  "CMakeFiles/fvdf_gpu.dir/gpu_solver.cpp.o"
  "CMakeFiles/fvdf_gpu.dir/gpu_solver.cpp.o.d"
  "CMakeFiles/fvdf_gpu.dir/kernels.cpp.o"
  "CMakeFiles/fvdf_gpu.dir/kernels.cpp.o.d"
  "libfvdf_gpu.a"
  "libfvdf_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
