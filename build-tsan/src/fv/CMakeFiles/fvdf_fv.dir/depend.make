# Empty dependencies file for fvdf_fv.
# This may be replaced when dependencies are built.
