file(REMOVE_RECURSE
  "CMakeFiles/fvdf_fv.dir/assembled.cpp.o"
  "CMakeFiles/fvdf_fv.dir/assembled.cpp.o.d"
  "CMakeFiles/fvdf_fv.dir/diagonal.cpp.o"
  "CMakeFiles/fvdf_fv.dir/diagonal.cpp.o.d"
  "CMakeFiles/fvdf_fv.dir/operator.cpp.o"
  "CMakeFiles/fvdf_fv.dir/operator.cpp.o.d"
  "CMakeFiles/fvdf_fv.dir/problem.cpp.o"
  "CMakeFiles/fvdf_fv.dir/problem.cpp.o.d"
  "CMakeFiles/fvdf_fv.dir/residual.cpp.o"
  "CMakeFiles/fvdf_fv.dir/residual.cpp.o.d"
  "libfvdf_fv.a"
  "libfvdf_fv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_fv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
