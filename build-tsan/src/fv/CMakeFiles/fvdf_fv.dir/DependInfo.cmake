
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fv/assembled.cpp" "src/fv/CMakeFiles/fvdf_fv.dir/assembled.cpp.o" "gcc" "src/fv/CMakeFiles/fvdf_fv.dir/assembled.cpp.o.d"
  "/root/repo/src/fv/diagonal.cpp" "src/fv/CMakeFiles/fvdf_fv.dir/diagonal.cpp.o" "gcc" "src/fv/CMakeFiles/fvdf_fv.dir/diagonal.cpp.o.d"
  "/root/repo/src/fv/operator.cpp" "src/fv/CMakeFiles/fvdf_fv.dir/operator.cpp.o" "gcc" "src/fv/CMakeFiles/fvdf_fv.dir/operator.cpp.o.d"
  "/root/repo/src/fv/problem.cpp" "src/fv/CMakeFiles/fvdf_fv.dir/problem.cpp.o" "gcc" "src/fv/CMakeFiles/fvdf_fv.dir/problem.cpp.o.d"
  "/root/repo/src/fv/residual.cpp" "src/fv/CMakeFiles/fvdf_fv.dir/residual.cpp.o" "gcc" "src/fv/CMakeFiles/fvdf_fv.dir/residual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
