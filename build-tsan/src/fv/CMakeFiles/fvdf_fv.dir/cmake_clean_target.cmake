file(REMOVE_RECURSE
  "libfvdf_fv.a"
)
