file(REMOVE_RECURSE
  "libfvdf_app.a"
)
