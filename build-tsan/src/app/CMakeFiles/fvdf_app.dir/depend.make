# Empty dependencies file for fvdf_app.
# This may be replaced when dependencies are built.
