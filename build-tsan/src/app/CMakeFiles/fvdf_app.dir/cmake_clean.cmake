file(REMOVE_RECURSE
  "CMakeFiles/fvdf_app.dir/scenario.cpp.o"
  "CMakeFiles/fvdf_app.dir/scenario.cpp.o.d"
  "libfvdf_app.a"
  "libfvdf_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
