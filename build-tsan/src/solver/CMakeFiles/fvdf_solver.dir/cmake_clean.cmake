file(REMOVE_RECURSE
  "CMakeFiles/fvdf_solver.dir/blas.cpp.o"
  "CMakeFiles/fvdf_solver.dir/blas.cpp.o.d"
  "CMakeFiles/fvdf_solver.dir/dense.cpp.o"
  "CMakeFiles/fvdf_solver.dir/dense.cpp.o.d"
  "CMakeFiles/fvdf_solver.dir/pressure_solve.cpp.o"
  "CMakeFiles/fvdf_solver.dir/pressure_solve.cpp.o.d"
  "CMakeFiles/fvdf_solver.dir/transient.cpp.o"
  "CMakeFiles/fvdf_solver.dir/transient.cpp.o.d"
  "libfvdf_solver.a"
  "libfvdf_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
