file(REMOVE_RECURSE
  "libfvdf_solver.a"
)
