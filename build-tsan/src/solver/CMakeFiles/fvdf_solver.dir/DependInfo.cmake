
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/blas.cpp" "src/solver/CMakeFiles/fvdf_solver.dir/blas.cpp.o" "gcc" "src/solver/CMakeFiles/fvdf_solver.dir/blas.cpp.o.d"
  "/root/repo/src/solver/dense.cpp" "src/solver/CMakeFiles/fvdf_solver.dir/dense.cpp.o" "gcc" "src/solver/CMakeFiles/fvdf_solver.dir/dense.cpp.o.d"
  "/root/repo/src/solver/pressure_solve.cpp" "src/solver/CMakeFiles/fvdf_solver.dir/pressure_solve.cpp.o" "gcc" "src/solver/CMakeFiles/fvdf_solver.dir/pressure_solve.cpp.o.d"
  "/root/repo/src/solver/transient.cpp" "src/solver/CMakeFiles/fvdf_solver.dir/transient.cpp.o" "gcc" "src/solver/CMakeFiles/fvdf_solver.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
