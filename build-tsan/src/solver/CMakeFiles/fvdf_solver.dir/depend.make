# Empty dependencies file for fvdf_solver.
# This may be replaced when dependencies are built.
