# Empty compiler generated dependencies file for fvdf_sim.
# This may be replaced when dependencies are built.
