file(REMOVE_RECURSE
  "CMakeFiles/fvdf_sim.dir/fvdf_sim.cpp.o"
  "CMakeFiles/fvdf_sim.dir/fvdf_sim.cpp.o.d"
  "fvdf_sim"
  "fvdf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvdf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
