file(REMOVE_RECURSE
  "CMakeFiles/test_multiphase.dir/test_multiphase.cpp.o"
  "CMakeFiles/test_multiphase.dir/test_multiphase.cpp.o.d"
  "test_multiphase"
  "test_multiphase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiphase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
