# Empty dependencies file for test_multiphase.
# This may be replaced when dependencies are built.
