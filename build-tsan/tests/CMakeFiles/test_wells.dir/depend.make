# Empty dependencies file for test_wells.
# This may be replaced when dependencies are built.
