file(REMOVE_RECURSE
  "CMakeFiles/test_wells.dir/test_wells.cpp.o"
  "CMakeFiles/test_wells.dir/test_wells.cpp.o.d"
  "test_wells"
  "test_wells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
