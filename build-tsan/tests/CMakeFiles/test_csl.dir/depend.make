# Empty dependencies file for test_csl.
# This may be replaced when dependencies are built.
