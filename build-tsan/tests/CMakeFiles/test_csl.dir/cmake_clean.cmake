file(REMOVE_RECURSE
  "CMakeFiles/test_csl.dir/test_csl.cpp.o"
  "CMakeFiles/test_csl.dir/test_csl.cpp.o.d"
  "test_csl"
  "test_csl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
