file(REMOVE_RECURSE
  "CMakeFiles/test_core_mapping.dir/test_core_mapping.cpp.o"
  "CMakeFiles/test_core_mapping.dir/test_core_mapping.cpp.o.d"
  "test_core_mapping"
  "test_core_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
