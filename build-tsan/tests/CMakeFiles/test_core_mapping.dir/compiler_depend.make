# Empty compiler generated dependencies file for test_core_mapping.
# This may be replaced when dependencies are built.
