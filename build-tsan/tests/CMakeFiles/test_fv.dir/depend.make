# Empty dependencies file for test_fv.
# This may be replaced when dependencies are built.
