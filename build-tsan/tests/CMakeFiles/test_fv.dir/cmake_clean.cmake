file(REMOVE_RECURSE
  "CMakeFiles/test_fv.dir/test_fv.cpp.o"
  "CMakeFiles/test_fv.dir/test_fv.cpp.o.d"
  "test_fv"
  "test_fv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
