
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_perf.cpp" "tests/CMakeFiles/test_perf.dir/test_perf.cpp.o" "gcc" "tests/CMakeFiles/test_perf.dir/test_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/app/CMakeFiles/fvdf_app.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fvdf_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/csl/CMakeFiles/fvdf_csl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wse/CMakeFiles/fvdf_wse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/fvdf_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/umesh/CMakeFiles/fvdf_umesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/multiphase/CMakeFiles/fvdf_multiphase.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/fvdf_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fv/CMakeFiles/fvdf_fv.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mesh/CMakeFiles/fvdf_mesh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/perf/CMakeFiles/fvdf_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/fvdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
