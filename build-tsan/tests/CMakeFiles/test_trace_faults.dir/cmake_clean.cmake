file(REMOVE_RECURSE
  "CMakeFiles/test_trace_faults.dir/test_trace_faults.cpp.o"
  "CMakeFiles/test_trace_faults.dir/test_trace_faults.cpp.o.d"
  "test_trace_faults"
  "test_trace_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
