# Empty compiler generated dependencies file for test_trace_faults.
# This may be replaced when dependencies are built.
