# Empty compiler generated dependencies file for test_wse_parallel.
# This may be replaced when dependencies are built.
