file(REMOVE_RECURSE
  "CMakeFiles/test_wse_parallel.dir/test_wse_parallel.cpp.o"
  "CMakeFiles/test_wse_parallel.dir/test_wse_parallel.cpp.o.d"
  "test_wse_parallel"
  "test_wse_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
