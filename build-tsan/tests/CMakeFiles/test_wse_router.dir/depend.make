# Empty dependencies file for test_wse_router.
# This may be replaced when dependencies are built.
