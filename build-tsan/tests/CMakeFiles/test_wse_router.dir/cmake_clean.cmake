file(REMOVE_RECURSE
  "CMakeFiles/test_wse_router.dir/test_wse_router.cpp.o"
  "CMakeFiles/test_wse_router.dir/test_wse_router.cpp.o.d"
  "test_wse_router"
  "test_wse_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
