file(REMOVE_RECURSE
  "CMakeFiles/test_wse_fabric.dir/test_wse_fabric.cpp.o"
  "CMakeFiles/test_wse_fabric.dir/test_wse_fabric.cpp.o.d"
  "test_wse_fabric"
  "test_wse_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
