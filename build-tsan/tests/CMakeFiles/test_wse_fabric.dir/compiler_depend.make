# Empty compiler generated dependencies file for test_wse_fabric.
# This may be replaced when dependencies are built.
