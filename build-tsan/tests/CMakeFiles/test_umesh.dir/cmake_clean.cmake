file(REMOVE_RECURSE
  "CMakeFiles/test_umesh.dir/test_umesh.cpp.o"
  "CMakeFiles/test_umesh.dir/test_umesh.cpp.o.d"
  "test_umesh"
  "test_umesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
