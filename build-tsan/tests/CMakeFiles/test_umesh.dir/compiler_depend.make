# Empty compiler generated dependencies file for test_umesh.
# This may be replaced when dependencies are built.
