file(REMOVE_RECURSE
  "CMakeFiles/test_dataflow_solver.dir/test_dataflow_solver.cpp.o"
  "CMakeFiles/test_dataflow_solver.dir/test_dataflow_solver.cpp.o.d"
  "test_dataflow_solver"
  "test_dataflow_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataflow_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
