# Empty dependencies file for test_dataflow_solver.
# This may be replaced when dependencies are built.
