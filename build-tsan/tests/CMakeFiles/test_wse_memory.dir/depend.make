# Empty dependencies file for test_wse_memory.
# This may be replaced when dependencies are built.
