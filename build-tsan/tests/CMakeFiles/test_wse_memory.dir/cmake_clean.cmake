file(REMOVE_RECURSE
  "CMakeFiles/test_wse_memory.dir/test_wse_memory.cpp.o"
  "CMakeFiles/test_wse_memory.dir/test_wse_memory.cpp.o.d"
  "test_wse_memory"
  "test_wse_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
